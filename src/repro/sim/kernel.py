"""The simulator: a clock plus an event queue.

All CrowdFill components in this reproduction — network channels, worker
behaviour models, the back-end server's quiescence detector — run on one
shared :class:`Simulator`.  Simulated time is in seconds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event, EventQueue

if TYPE_CHECKING:
    from repro.obs import NullObservability, Observability


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
        >>> _ = sim.run()
        >>> fired
        [1.0, 2.0]
    """

    def __init__(
        self, obs: "Observability | NullObservability | None" = None
    ) -> None:
        """Args:
            obs: optional :class:`repro.obs.Observability`.  The event
                loop itself stays uninstrumented per event; aggregate
                counts are folded into the registry after each
                :meth:`run` so the per-event cost is zero.
        """
        from repro.obs import resolve

        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._microtasks: list[Callable[[], Any]] = []
        self.obs = resolve(obs)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def running(self) -> bool:
        """True while :meth:`run` is executing (inside an event/microtask)."""
        return self._running

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], Any]) -> Event:
        """Schedule *action* to run *delay* seconds from now.

        Args:
            delay: nonnegative offset from the current clock.
            action: zero-argument callable.

        Returns:
            The scheduled :class:`Event`, which may be cancelled.

        Raises:
            SimulationError: if *delay* is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], Any]) -> Event:
        """Schedule *action* at absolute simulated *time* (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self._now}"
            )
        return self._queue.push(time, action)

    def defer(self, action: Callable[[], Any]) -> None:
        """Run *action* at the end of the current simulated instant.

        Deferred actions fire once every event scheduled at the current
        clock value has fired, but before the clock advances — the
        batch-drain hook: a server can collect the messages delivered at
        one instant and apply them as a batch without perturbing
        delivery timestamps or intra-instant event order.  Actions run
        FIFO and may defer further actions (which join the same
        instant); a deferred action scheduling a new event at the
        current time extends the instant.  Outside :meth:`run`, the
        action is held until the next call.
        """
        self._microtasks.append(action)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, *until* passes, or *max_events*.

        Args:
            until: stop (without firing) events scheduled after this time;
                the clock is advanced to *until* when given.
            max_events: safety bound on the number of events fired.

        Returns:
            The number of events fired.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        fired = 0
        microtasks = self._microtasks
        try:
            while True:
                next_time = self._queue.peek_time()
                # End of the current instant: run deferred actions before
                # the clock advances (they may schedule events at the
                # current time, extending the instant).
                if microtasks and (next_time is None or next_time > self._now):
                    task = microtasks.pop(0)
                    task()
                    continue
                if max_events is not None and fired >= max_events:
                    break
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.action()
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        if fired and self.obs.enabled:
            self.obs.inc("sim.events_fired", fired)
            self.obs.inc("sim.runs")
            self.obs.gauge("sim.now", self._now)
            self.obs.gauge("sim.pending_events", len(self._queue))
        return fired

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1
