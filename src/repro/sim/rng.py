"""Named random-number streams.

Every stochastic component of an experiment (each simulated worker's
knowledge, its latencies, the network's jitter, ...) draws from its own
stream derived from one master seed.  Adding or removing a component then
never perturbs the draws seen by the others, which keeps experiment
sweeps comparable across configurations.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent ``random.Random`` streams.

    Streams are keyed by name; the same (master seed, name) pair always
    yields an identically-seeded generator.

    Example:
        >>> streams = RngStreams(7)
        >>> a = streams.stream("worker-1")
        >>> b = RngStreams(7).stream("worker-1")
        >>> a.random() == b.random()
        True
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The seed every stream is derived from."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(
            f"{self._master_seed}/fork:{name}".encode("utf-8")
        ).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
