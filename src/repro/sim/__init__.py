"""Discrete-event simulation kernel.

CrowdFill's formal model (paper section 2.4) assumes only that messages
between the server and clients are delivered reliably and in order.  The
paper's implementation realizes this with Node.js and Socket.IO; this
reproduction realizes it with a deterministic discrete-event simulator so
that whole experiment runs — including the interleaving of concurrent
worker actions — are seedable and replayable.

The kernel is deliberately small: an event queue ordered by (time, seq),
a clock, and named random-number streams.  Higher layers (``repro.net``,
``repro.workers``, ``repro.experiments``) schedule callbacks on it.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams

__all__ = ["Event", "EventQueue", "Simulator", "RngStreams"]
