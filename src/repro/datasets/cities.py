"""Synthetic city-facts universe (a second data domain for section 6's
"different schemas and workloads")."""

from __future__ import annotations

import random

from repro.core.row import RowValue
from repro.core.schema import Column, DataType, Schema
from repro.datasets.ground_truth import GroundTruth

_STEMS = [
    "River", "Lake", "Stone", "Green", "North", "South", "East", "West",
    "Oak", "Pine", "Silver", "Gold", "Iron", "Clear", "High", "Low",
]
_SUFFIXES = ["ton", "ville", "burg", "field", "port", "ford", "haven", "dale"]
_COUNTRIES = [
    "Atlantis", "Borduria", "Carpathia", "Dinotopia", "Elbonia",
    "Freedonia", "Genovia", "Hyrule",
]


def city_schema() -> Schema:
    """City(name, country, population, area_km2, founded)."""
    return Schema(
        name="City",
        columns=(
            Column("name", DataType.STRING, description="city name"),
            Column("country", DataType.STRING, description="country"),
            Column("population", DataType.INT, description="inhabitants"),
            Column("area_km2", DataType.INT, description="area in km^2"),
            Column("founded", DataType.INT, description="founding year"),
        ),
        primary_key=("name", "country"),
    )


class CityUniverse:
    """A seeded universe of cities keyed by (name, country)."""

    def __init__(self, seed: int = 0, size: int = 300) -> None:
        if size < 1:
            raise ValueError(f"size must be positive, got {size}")
        self.seed = seed
        self.size = size
        self.schema = city_schema()
        self._rows = self._generate()

    def ground_truth(self) -> GroundTruth:
        """The complete true table."""
        return GroundTruth(self.schema, self._rows)

    def _generate(self) -> list[RowValue]:
        rng = random.Random(self.seed)
        rows: list[RowValue] = []
        seen: set[tuple[str, str]] = set()
        while len(rows) < self.size:
            name = rng.choice(_STEMS) + rng.choice(_SUFFIXES)
            country = rng.choice(_COUNTRIES)
            if (name, country) in seen:
                name = f"New {name}"
                if (name, country) in seen:
                    continue
            seen.add((name, country))
            population = int(10 ** rng.uniform(3.5, 7.0))
            area = max(1, round(population / rng.uniform(500, 5000)))
            founded = rng.randint(900, 1950)
            rows.append(
                RowValue(
                    {
                        "name": name,
                        "country": country,
                        "population": population,
                        "area_km2": area,
                        "founded": founded,
                    }
                )
            )
        return rows
