"""Synthetic ground-truth universes.

The paper's experiments collect facts about real soccer players from
human volunteers.  Without a crowd, this reproduction samples worker
knowledge from deterministic synthetic universes: each universe is a
complete "true" table from which simulated workers know a subset, make
typos against, and judge other workers' entries.

Three domains are provided (the paper's section 6 mentions experiments
"using different schemas and workloads"):

- :class:`SoccerPlayerUniverse` — the running example, with the
  section 6 ``dob`` column and a caps distribution that makes
  "80 <= caps <= 99" select a couple hundred players, mirroring the
  paper's estimate of the eligible population.
- :class:`CityUniverse` — city facts keyed by (name, country).
- :class:`MovieUniverse` — movie facts keyed by (title, year).
"""

from repro.datasets.ground_truth import GroundTruth
from repro.datasets.soccer import SoccerPlayerUniverse
from repro.datasets.cities import CityUniverse
from repro.datasets.movies import MovieUniverse

__all__ = [
    "GroundTruth",
    "SoccerPlayerUniverse",
    "CityUniverse",
    "MovieUniverse",
]
