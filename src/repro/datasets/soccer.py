"""Deterministic synthetic soccer-player universe.

Generates a population of players with unique (name, nationality) keys
and realistic-looking attributes.  The caps distribution is shaped so
that roughly 200+ players fall in the paper's 80-99 band when the
default population size is used, matching the paper's remark that "we
estimate there are more than 200 players whose caps value is in the
desired range".
"""

from __future__ import annotations

import datetime
import random

from repro.core.row import RowValue
from repro.core.schema import Schema, soccer_player_schema
from repro.datasets.ground_truth import GroundTruth

_GIVEN = [
    "Lio", "Ron", "Ney", "Ik", "Dav", "Zin", "Car", "And", "Gar", "Fer",
    "Mar", "Pau", "Rob", "Tho", "Ser", "Luk", "Edi", "Kyl", "Har", "Raf",
]
_GIVEN_SUFFIX = ["nel", "aldo", "mar", "er", "id", "edine", "los", "res", "eth", "nando"]
_FAMILY = [
    "Mess", "Silv", "Sant", "Cass", "Beck", "Zidan", "Rodrig", "Fernand",
    "Gonzal", "Martin", "Lopes", "Herrer", "Schmid", "Mull", "Kovac",
    "Jansen", "Larss", "Novak", "Petrov", "Yamad",
]
_FAMILY_SUFFIX = ["i", "a", "os", "illas", "ham", "e", "uez", "es", "ez", "son"]

_NATIONALITIES = [
    "Argentina", "Brazil", "Spain", "England", "France", "Germany",
    "Italy", "Netherlands", "Portugal", "Uruguay", "Mexico", "Japan",
    "Korea Republic", "United States", "Nigeria", "Ghana", "Sweden",
    "Denmark", "Croatia", "Belgium",
]

_POSITIONS = ["GK", "DF", "MF", "FW"]
_POSITION_WEIGHTS = [0.1, 0.3, 0.35, 0.25]


class SoccerPlayerUniverse:
    """A seeded universe of soccer players.

    Args:
        seed: generation seed (same seed, same universe).
        size: number of players to generate.
        include_dob: include the date-of-birth column (section 6 setup).

    Example:
        >>> universe = SoccerPlayerUniverse(seed=1, size=50)
        >>> truth = universe.ground_truth()
        >>> len(truth)
        50
    """

    def __init__(
        self, seed: int = 0, size: int = 600, include_dob: bool = True
    ) -> None:
        if size < 1:
            raise ValueError(f"size must be positive, got {size}")
        self.seed = seed
        self.size = size
        self.include_dob = include_dob
        self.schema: Schema = soccer_player_schema(include_dob=include_dob)
        self._rows = self._generate()

    def ground_truth(self) -> GroundTruth:
        """The complete true table."""
        return GroundTruth(self.schema, self._rows)

    def caps_band(self, low: int = 80, high: int = 99) -> GroundTruth:
        """Players with low <= caps <= high — the section 6 target set."""
        return GroundTruth(
            self.schema,
            [row for row in self._rows if low <= row["caps"] <= high],
        )

    def _generate(self) -> list[RowValue]:
        rng = random.Random(self.seed)
        rows: list[RowValue] = []
        seen_keys: set[tuple[str, str]] = set()
        attempts = 0
        while len(rows) < self.size:
            attempts += 1
            if attempts > 50 * self.size:
                raise RuntimeError("name space exhausted; increase name parts")
            name = self._make_name(rng, attempts)
            nationality = rng.choice(_NATIONALITIES)
            if (name, nationality) in seen_keys:
                continue
            seen_keys.add((name, nationality))
            position = rng.choices(_POSITIONS, weights=_POSITION_WEIGHTS)[0]
            caps = self._sample_caps(rng)
            goals = self._sample_goals(rng, position, caps)
            values = {
                "name": name,
                "nationality": nationality,
                "position": position,
                "caps": caps,
                "goals": goals,
            }
            if self.include_dob:
                values["dob"] = self._sample_dob(rng)
            rows.append(RowValue(values))
        return rows

    def _make_name(self, rng: random.Random, salt: int) -> str:
        given = rng.choice(_GIVEN) + rng.choice(_GIVEN_SUFFIX)
        family = rng.choice(_FAMILY) + rng.choice(_FAMILY_SUFFIX)
        name = f"{given} {family}"
        # Rare collisions get a Jr./II style disambiguator.
        if salt % 7 == 0 and rng.random() < 0.05:
            name += " Jr."
        return name

    def _sample_caps(self, rng: random.Random) -> int:
        """Career caps: most careers are short; a long right tail.

        About 35-40% of players land in [80, 99] so a 600-player
        universe yields 200+ eligible players for the section 6 band.
        """
        bucket = rng.random()
        if bucket < 0.30:
            return rng.randint(5, 79)
        if bucket < 0.68:
            return rng.randint(80, 99)
        return rng.randint(100, 180)

    def _sample_goals(self, rng: random.Random, position: str, caps: int) -> int:
        rate = {"GK": 0.0, "DF": 0.03, "MF": 0.12, "FW": 0.45}[position]
        expected = rate * caps
        jitter = rng.uniform(0.5, 1.5)
        return max(0, round(expected * jitter))

    def _sample_dob(self, rng: random.Random) -> str:
        year = rng.randint(1960, 1998)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return datetime.date(year, month, day).isoformat()
