"""Ground truth: a complete true table behind a simulated crowd."""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Sequence

from repro.core.row import RowValue
from repro.core.schema import Schema


class GroundTruth:
    """A complete, keyed set of true rows for one schema.

    Simulated workers consult this to "know" facts, and voting
    judgement compares candidate rows against it.

    Args:
        schema: the table schema the rows conform to.
        rows: complete row values (every column filled, unique keys).
    """

    def __init__(self, schema: Schema, rows: Iterable[RowValue]) -> None:
        self.schema = schema
        self.rows: list[RowValue] = list(rows)
        self._by_key: dict[tuple, RowValue] = {}
        # Postings index: (column, value) -> row indices.  Consistency
        # lookups are the hot path of every simulated worker decision.
        self._postings: dict[tuple[str, Any], list[int]] = {}
        for index, row in enumerate(self.rows):
            if not row.is_complete(schema.column_names):
                raise ValueError(f"ground-truth row is incomplete: {row!r}")
            key = row.key(schema.key_columns)
            assert key is not None
            if key in self._by_key:
                raise ValueError(f"duplicate ground-truth key: {key}")
            self._by_key[key] = row
            for column, value in row.items():
                self._postings.setdefault((column, value), []).append(index)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def by_key(self, key: tuple) -> RowValue | None:
        """The true row for *key*, or None."""
        return self._by_key.get(key)

    def keys(self) -> list[tuple]:
        """All primary keys, in row order."""
        return [row.key(self.schema.key_columns) for row in self.rows]  # type: ignore[misc]

    def lookup_consistent(self, partial: RowValue) -> list[RowValue]:
        """True rows whose values are consistent with *partial*.

        A simulated worker uses this to decide which entity a partially
        filled row refers to.  Uses the postings index: the candidate
        set is the smallest posting among the filled cells.
        """
        if partial.is_empty:
            return list(self.rows)
        smallest: list[int] | None = None
        for column, value in partial.items():
            posting = self._postings.get((column, value))
            if posting is None:
                return []
            if smallest is None or len(posting) < len(smallest):
                smallest = posting
        assert smallest is not None
        return [
            self.rows[index]
            for index in smallest
            if self.rows[index].subsumes(partial)
        ]

    def is_consistent(self, partial: RowValue) -> bool:
        """Is *partial* a sub-row of some true row?"""
        return bool(self.lookup_consistent(partial))

    def true_value(self, partial: RowValue, column: str) -> Any | None:
        """The true value of *column* for the entity *partial* denotes.

        Returns None when the partial row is ambiguous (consistent with
        zero or several true rows).
        """
        consistent = self.lookup_consistent(partial)
        if len(consistent) != 1:
            return None
        return consistent[0][column]

    def filter(self, predicate: Callable[[RowValue], bool]) -> "GroundTruth":
        """A new GroundTruth restricted to rows satisfying *predicate*."""
        return GroundTruth(self.schema, [r for r in self.rows if predicate(r)])

    def sample_known_subset(
        self, rng: random.Random, fraction: float
    ) -> "GroundTruth":
        """A worker's personal knowledge: a random subset of the rows."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        count = round(fraction * len(self.rows))
        chosen = rng.sample(self.rows, count) if count else []
        return GroundTruth(self.schema, chosen)

    def accuracy_of(self, values: Sequence[RowValue]) -> float:
        """Fraction of *values* that exactly match a true row.

        The experiments use this to report final-table accuracy.
        """
        if not values:
            return 1.0
        correct = sum(
            1
            for value in values
            if self._by_key.get(value.key(self.schema.key_columns) or ())
            == value
        )
        return correct / len(values)
