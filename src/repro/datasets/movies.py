"""Synthetic movie-facts universe (a third data domain)."""

from __future__ import annotations

import random

from repro.core.row import RowValue
from repro.core.schema import Column, DataType, Schema
from repro.datasets.ground_truth import GroundTruth

_ADJECTIVES = [
    "Silent", "Crimson", "Endless", "Broken", "Golden", "Hidden",
    "Burning", "Frozen", "Midnight", "Electric", "Hollow", "Distant",
]
_NOUNS = [
    "Horizon", "Garden", "Empire", "River", "Mirror", "Signal",
    "Harvest", "Voyage", "Echo", "Cathedral", "Orchard", "Labyrinth",
]
_DIRECTORS = [
    "A. Kurova", "B. Ferreira", "C. Lindqvist", "D. Okafor",
    "E. Takahashi", "F. Moreau", "G. Petridis", "H. Winslow",
]
_GENRES = ["drama", "thriller", "comedy", "sci-fi", "documentary"]


def movie_schema() -> Schema:
    """Movie(title, year, director, runtime_min, genre)."""
    return Schema(
        name="Movie",
        columns=(
            Column("title", DataType.STRING, description="film title"),
            Column("year", DataType.INT, description="release year"),
            Column("director", DataType.STRING, description="director"),
            Column("runtime_min", DataType.INT, description="runtime, minutes"),
            Column(
                "genre",
                DataType.STRING,
                domain=frozenset(_GENRES),
                description="primary genre",
            ),
        ),
        primary_key=("title", "year"),
    )


class MovieUniverse:
    """A seeded universe of movies keyed by (title, year)."""

    def __init__(self, seed: int = 0, size: int = 300) -> None:
        if size < 1:
            raise ValueError(f"size must be positive, got {size}")
        self.seed = seed
        self.size = size
        self.schema = movie_schema()
        self._rows = self._generate()

    def ground_truth(self) -> GroundTruth:
        """The complete true table."""
        return GroundTruth(self.schema, self._rows)

    def _generate(self) -> list[RowValue]:
        rng = random.Random(self.seed)
        rows: list[RowValue] = []
        seen: set[tuple[str, int]] = set()
        while len(rows) < self.size:
            title = f"The {rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}"
            year = rng.randint(1950, 2013)
            if (title, year) in seen:
                continue
            seen.add((title, year))
            rows.append(
                RowValue(
                    {
                        "title": title,
                        "year": year,
                        "director": rng.choice(_DIRECTORS),
                        "runtime_min": rng.randint(74, 195),
                        "genre": rng.choice(_GENRES),
                    }
                )
            )
        return rows
