"""Payment ledger: base rewards and bonuses per worker."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LedgerEntry:
    """One payment event."""

    worker_id: str
    amount: float
    kind: str  # "base" | "bonus"
    reason: str = ""


@dataclass
class PaymentLedger:
    """Accumulates payments; supports per-worker and total queries."""

    entries: list[LedgerEntry] = field(default_factory=list)

    def pay_base(self, worker_id: str, amount: float, reason: str = "") -> None:
        """Record a base-reward payment."""
        self._pay(worker_id, amount, "base", reason)

    def pay_bonus(self, worker_id: str, amount: float, reason: str = "") -> None:
        """Record a bonus payment."""
        self._pay(worker_id, amount, "bonus", reason)

    def _pay(self, worker_id: str, amount: float, kind: str, reason: str) -> None:
        if amount < 0:
            raise ValueError(f"negative payment: {amount}")
        self.entries.append(LedgerEntry(worker_id, amount, kind, reason))

    def total_for(self, worker_id: str) -> float:
        """Everything paid to *worker_id* so far."""
        return sum(e.amount for e in self.entries if e.worker_id == worker_id)

    def bonus_for(self, worker_id: str) -> float:
        """Bonus payments only."""
        return sum(
            e.amount
            for e in self.entries
            if e.worker_id == worker_id and e.kind == "bonus"
        )

    def total(self) -> float:
        """Grand total across all workers."""
        return sum(e.amount for e in self.entries)

    def by_worker(self) -> dict[str, float]:
        """Totals keyed by worker id."""
        totals: dict[str, float] = {}
        for entry in self.entries:
            totals[entry.worker_id] = totals.get(entry.worker_id, 0.0) + entry.amount
        return totals
