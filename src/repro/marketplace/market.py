"""Tasks, assignments, and worker arrival.

The lifecycle mirrors Mechanical Turk's external-question HITs:

1. the requester (CrowdFill's front-end) posts a :class:`Task` with a
   base reward and a maximum number of assignments;
2. workers *accept* the task — here, an arrival process schedules
   acceptances on the simulator — and are redirected to the external
   site (the on_accept callback, wired to the back-end server);
3. the requester approves assignments (paying the base reward) and may
   grant per-worker *bonuses* — CrowdFill pays its contribution-based
   compensation entirely through bonuses.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.marketplace.ledger import PaymentLedger
from repro.sim import RngStreams, Simulator

if TYPE_CHECKING:
    from repro.obs import NullObservability, Observability


class MarketplaceError(RuntimeError):
    """Illegal marketplace operation (bad task id, full task, ...)."""


@dataclass
class Assignment:
    """One worker's acceptance of a task."""

    assignment_id: str
    task_id: str
    worker_id: str
    accepted_at: float
    status: str = "accepted"  # accepted | submitted | approved | rejected


@dataclass
class Task:
    """An externally-hosted task (a HIT)."""

    task_id: str
    title: str
    description: str
    base_reward: float
    max_assignments: int
    external_url: str = ""
    status: str = "open"  # open | closed
    assignments: list[Assignment] = field(default_factory=list)

    @property
    def open_slots(self) -> int:
        return max(0, self.max_assignments - len(self.assignments))


class Marketplace:
    """A simulated marketplace with a seedable arrival process."""

    def __init__(
        self,
        sim: Simulator,
        *,
        streams: RngStreams | None = None,
        obs: "Observability | NullObservability | None" = None,
    ) -> None:
        """Args:
            sim: the shared simulator (arrival scheduling, timestamps).
            streams: named entropy source; the marketplace draws its
                arrival process from the ``"marketplace"`` stream.
                Defaults to a zero-seeded stream.
            obs: optional :class:`repro.obs.Observability` receiving
                task/assignment counters and budget/bonus flow.
        """
        from repro.obs import resolve

        self.sim = sim
        if streams is not None:
            self.rng = streams.stream("marketplace")
        else:
            self.rng = random.Random(0)
        self.obs = resolve(obs)
        self.ledger = PaymentLedger()
        self._tasks: dict[str, Task] = {}
        self._task_counter = itertools.count(1)
        self._assignment_counter = itertools.count(1)
        self._on_accept: dict[str, Callable[[str], None]] = {}

    # -- requester API ----------------------------------------------------------

    def post_task(
        self,
        title: str,
        description: str,
        base_reward: float,
        max_assignments: int,
        external_url: str = "",
        on_accept: Callable[[str], None] | None = None,
    ) -> Task:
        """Create a task; *on_accept* fires with each accepting worker id."""
        if base_reward < 0:
            raise MarketplaceError(f"negative reward: {base_reward}")
        if max_assignments < 1:
            raise MarketplaceError(
                f"max_assignments must be >= 1, got {max_assignments}"
            )
        task = Task(
            task_id=f"task-{next(self._task_counter)}",
            title=title,
            description=description,
            base_reward=base_reward,
            max_assignments=max_assignments,
            external_url=external_url,
        )
        self._tasks[task.task_id] = task
        if on_accept is not None:
            self._on_accept[task.task_id] = on_accept
        if self.obs.enabled:
            self.obs.inc("market.tasks_posted")
            self.obs.event(
                "market.post_task",
                task_id=task.task_id,
                max_assignments=max_assignments,
                base_reward=base_reward,
            )
        return task

    def task(self, task_id: str) -> Task:
        """Look up a task.

        Raises:
            MarketplaceError: unknown task id.
        """
        if task_id not in self._tasks:
            raise MarketplaceError(f"unknown task: {task_id!r}")
        return self._tasks[task_id]

    def tasks(self) -> list[Task]:
        """All tasks, in posting order."""
        return list(self._tasks.values())

    def close_task(self, task_id: str) -> None:
        """Stop accepting new workers."""
        self.task(task_id).status = "closed"

    def approve_assignment(self, assignment_id: str) -> None:
        """Approve a submitted assignment and pay the base reward."""
        for task in self._tasks.values():
            for assignment in task.assignments:
                if assignment.assignment_id == assignment_id:
                    if assignment.status == "approved":
                        return
                    assignment.status = "approved"
                    self.ledger.pay_base(
                        assignment.worker_id, task.base_reward, task.task_id
                    )
                    if self.obs.enabled:
                        self.obs.inc("market.assignments_approved")
                        self.obs.observe(
                            "market.base_payment", task.base_reward
                        )
                        self.obs.gauge(
                            "market.total_paid", self.ledger.total()
                        )
                    return
        raise MarketplaceError(f"unknown assignment: {assignment_id!r}")

    def approve_all(self, task_id: str) -> None:
        """Approve every assignment of a task."""
        for assignment in self.task(task_id).assignments:
            self.approve_assignment(assignment.assignment_id)

    def grant_bonus(self, worker_id: str, amount: float, reason: str = "") -> None:
        """Pay a bonus — the channel CrowdFill's compensation uses."""
        self.ledger.pay_bonus(worker_id, amount, reason)
        if self.obs.enabled:
            self.obs.inc("market.bonuses_granted")
            self.obs.observe("market.bonus_payment", amount)
            self.obs.gauge("market.total_paid", self.ledger.total())
            self.obs.event(
                "market.bonus", worker_id=worker_id, amount=amount
            )

    # -- worker side -------------------------------------------------------------

    def accept(self, task_id: str, worker_id: str) -> Assignment:
        """A worker accepts the task (fires the redirect callback).

        Raises:
            MarketplaceError: closed/full task or double acceptance.
        """
        task = self.task(task_id)
        if task.status != "open":
            raise MarketplaceError(f"task {task_id!r} is closed")
        if task.open_slots == 0:
            raise MarketplaceError(f"task {task_id!r} has no open slots")
        if any(a.worker_id == worker_id for a in task.assignments):
            raise MarketplaceError(
                f"worker {worker_id!r} already accepted task {task_id!r}"
            )
        assignment = Assignment(
            assignment_id=f"assignment-{next(self._assignment_counter)}",
            task_id=task_id,
            worker_id=worker_id,
            accepted_at=self.sim.now,
        )
        task.assignments.append(assignment)
        if self.obs.enabled:
            self.obs.inc("market.assignments_accepted")
            self.obs.event(
                "market.accept", task_id=task_id, worker_id=worker_id
            )
        callback = self._on_accept.get(task_id)
        if callback is not None:
            callback(worker_id)
        return assignment

    def submit(self, assignment_id: str) -> None:
        """A worker submits (finishes) an assignment."""
        for task in self._tasks.values():
            for assignment in task.assignments:
                if assignment.assignment_id == assignment_id:
                    assignment.status = "submitted"
                    return
        raise MarketplaceError(f"unknown assignment: {assignment_id!r}")

    # -- arrival process -----------------------------------------------------------

    def schedule_arrivals(
        self,
        task_id: str,
        worker_ids: list[str],
        mean_interarrival: float = 20.0,
        first_at: float = 0.0,
    ) -> None:
        """Schedule workers to accept the task over simulated time.

        Interarrival gaps are exponential with the given mean — a
        Poisson-ish trickle of workers discovering the task, as on a
        real marketplace.
        """
        at = first_at
        for worker_id in worker_ids:
            self.sim.schedule_at(
                at, lambda w=worker_id: self._try_accept(task_id, w)
            )
            at += self.rng.expovariate(1.0 / mean_interarrival)

    def _try_accept(self, task_id: str, worker_id: str) -> None:
        try:
            self.accept(task_id, worker_id)
        except MarketplaceError:
            pass  # task closed or filled before this worker arrived
