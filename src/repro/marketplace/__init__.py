"""Simulated crowdsourcing marketplace.

Stands in for Amazon Mechanical Turk's developer sandbox (paper
sections 3.2 and 6).  The front-end server needs exactly two
marketplace capabilities — hosting externally-served tasks and paying
per-worker bonuses — plus, for experiments, a seedable worker-arrival
process.
"""

from repro.marketplace.market import (
    Assignment,
    Marketplace,
    MarketplaceError,
    Task,
)
from repro.marketplace.ledger import PaymentLedger

__all__ = [
    "Assignment",
    "Marketplace",
    "MarketplaceError",
    "Task",
    "PaymentLedger",
]
