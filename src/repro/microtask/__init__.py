"""The microtask-based baseline.

The paper positions CrowdFill against "a microtask-based approach: ask
workers for specific pieces of data, then assemble the answers into a
complete table" (CrowdDB [11], Deco [16], crowdsourced enumeration
[23]), and its introduction names the structural trade-offs:

- microtask workers answer *assigned* questions — no transparency, so
  concurrent enumeration produces duplicates the requester must detect
  and redo;
- "iterative microtasks" pay a latency overhead per task — a worker
  must find/accept each small task before doing seconds of work —
  which CrowdFill's persistent table view avoids;
- conversely, microtasks avoid conflicting concurrent edits entirely,
  since no two workers ever hold the same question.

This package implements that baseline faithfully enough to quantify the
comparison the paper calls "an important topic of future work": a
coordinator decomposing collection into enumerate / fill / verify
microtasks with majority voting, plus simulated workers driven by the
same knowledge/latency models as the CrowdFill crew.
"""

from repro.microtask.tasks import (
    EnumerateTask,
    FillTask,
    MicrotaskAnswer,
    VerifyTask,
)
from repro.microtask.coordinator import CoordinatorStats, MicrotaskCoordinator
from repro.microtask.worker import MicrotaskWorker

__all__ = [
    "EnumerateTask",
    "FillTask",
    "VerifyTask",
    "MicrotaskAnswer",
    "MicrotaskCoordinator",
    "CoordinatorStats",
    "MicrotaskWorker",
]
