"""Simulated workers for the microtask baseline.

The same people as the CrowdFill crew — identical knowledge, accuracy,
speed, and engagement models — but working the way a microtask
marketplace makes them work: find a task, accept it (paying a per-task
acceptance overhead), answer the one question, repeat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.row import RowValue
from repro.datasets.ground_truth import GroundTruth
from repro.microtask.coordinator import MicrotaskCoordinator
from repro.microtask.tasks import (
    EnumerateTask,
    FillTask,
    Microtask,
    MicrotaskAnswer,
    VerifyTask,
)
from repro.sim import Simulator
from repro.workers.errors import corrupt_value
from repro.workers.profile import ActionLatencies, WorkerProfile

DEFAULT_ACCEPT_OVERHEAD = (4.0, 12.0)
"""Uniform range of the per-task find-and-accept overhead, seconds —
the 'iterative microtasks' latency the paper's design avoids."""

UNSURE_YES_BIAS = 0.65
"""Verification forces an answer; an unsure worker leans 'looks fine'."""


@dataclass
class MicrotaskWorkerLog:
    """Per-worker activity counters for the baseline."""

    tasks_answered: int = 0
    tasks_skipped: int = 0
    idles: int = 0
    overhead_seconds: float = 0.0
    work_seconds: float = 0.0
    per_kind: dict = field(default_factory=lambda: {
        "enumerate": 0, "fill": 0, "verify": 0,
    })


class MicrotaskWorker:
    """A pull-loop worker answering one microtask at a time.

    Args:
        worker_id: unique identifier.
        coordinator: the task source/sink.
        knowledge: what this worker knows (subset of the ground truth).
        reference: the look-it-up-online reference (may be None).
        profile: the same behavioural knobs as the CrowdFill crew.
        sim / rng / latencies: simulation plumbing.
        is_done: polled each cycle; True stops the loop.
        accept_overhead: (low, high) seconds to find and accept a task.
    """

    def __init__(
        self,
        worker_id: str,
        coordinator: MicrotaskCoordinator,
        knowledge: GroundTruth,
        reference: GroundTruth | None,
        profile: WorkerProfile,
        sim: Simulator,
        rng: random.Random,
        latencies: ActionLatencies | None = None,
        is_done: Callable[[], bool] | None = None,
        accept_overhead: tuple[float, float] = DEFAULT_ACCEPT_OVERHEAD,
    ) -> None:
        self.worker_id = worker_id
        self.coordinator = coordinator
        self.knowledge = knowledge
        self.reference = reference
        self.profile = profile
        self.sim = sim
        self.rng = rng
        self.latencies = latencies or ActionLatencies()
        self.is_done = is_done or (lambda: False)
        self.accept_overhead = accept_overhead
        self.log = MicrotaskWorkerLog()
        self._verdict_memo: dict[RowValue, bool] = {}
        self._started = False
        self._offline = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"worker {self.worker_id} already started")
        self._started = True
        self.coordinator.register_worker(self.worker_id)
        self.sim.schedule(self.profile.start_delay, self._cycle)

    def interrupt(self) -> None:
        """The worker dropped (connection/browser gone): abandon the
        current assignment so the coordinator can reissue it."""
        if self._offline:
            return
        self._offline = True
        self.coordinator.release_worker(self.worker_id)

    def resume(self) -> None:
        """The worker rejoined: re-register and restart the pull loop."""
        if not self._offline:
            return
        self._offline = False
        self.coordinator.register_worker(self.worker_id)
        self.sim.schedule(0.0, self._cycle)

    def _cycle(self) -> None:
        if self._offline or self.is_done():
            return
        task = self.coordinator.next_task(self.worker_id)
        if task is None:
            self.log.idles += 1
            self.sim.schedule(
                self.latencies.idle_retry / self.profile.speed, self._cycle
            )
            return
        overhead = self.rng.uniform(*self.accept_overhead) / self.profile.speed
        work = self._work_latency(task) / self.profile.speed
        if self.rng.random() < self.profile.pause_prob:
            overhead += self.rng.uniform(0.5, 2.0) * self.profile.pause_seconds
        self.log.overhead_seconds += overhead
        self.log.work_seconds += work
        self.sim.schedule(overhead + work, lambda: self._finish(task))

    def _finish(self, task: Microtask) -> None:
        if self._offline:
            return  # the assignment was released by interrupt()
        payload = self._answer(task)
        if payload is None:
            self.log.tasks_skipped += 1
        else:
            self.log.tasks_answered += 1
            self.log.per_kind[task.kind] += 1
        self.coordinator.submit(
            MicrotaskAnswer(
                task_id=task.task_id,
                worker_id=self.worker_id,
                payload=payload,
            )
        )
        self.sim.schedule(0.0, self._cycle)

    # -- answering ---------------------------------------------------------------

    def _work_latency(self, task: Microtask) -> float:
        if isinstance(task, EnumerateTask):
            schema = self.coordinator.schema
            return sum(
                self.latencies.sample_fill(self.rng, column)
                for column in schema.key_columns
            )
        if isinstance(task, FillTask):
            return self.latencies.sample_fill(self.rng, task.column)
        return self.latencies.sample_upvote(self.rng)

    def _answer(self, task: Microtask) -> Any:
        if isinstance(task, EnumerateTask):
            return self._answer_enumerate(task)
        if isinstance(task, FillTask):
            return self._answer_fill(task)
        assert isinstance(task, VerifyTask)
        return self._answer_verify(task)

    def _answer_enumerate(self, task: EnumerateTask) -> RowValue | None:
        schema = self.coordinator.schema
        candidates = [
            row
            for row in self.knowledge.rows
            if row.key(schema.key_columns) not in task.exclusions
        ]
        if not candidates:
            return None
        entity = self.rng.choice(candidates)
        values = {}
        for column in schema.key_columns:
            true_value = entity[column]
            if self.rng.random() < self.profile.fill_accuracy:
                values[column] = true_value
            else:
                values[column] = corrupt_value(
                    self.rng, schema.column(column), true_value
                )
        return RowValue(values)

    def _answer_fill(self, task: FillTask) -> Any:
        entity = self.knowledge.by_key(task.key)
        if entity is None and self.reference is not None:
            if self.rng.random() < self.profile.suspect_unknown_prob:
                entity = self.reference.by_key(task.key)
        if entity is None:
            return None  # skip: someone else may know
        true_value = entity[task.column]
        if self.rng.random() < self.profile.fill_accuracy:
            return true_value
        return corrupt_value(
            self.rng, self.coordinator.schema.column(task.column), true_value
        )

    def _answer_verify(self, task: VerifyTask) -> bool:
        if task.value in self._verdict_memo:
            return self._verdict_memo[task.value]
        schema = self.coordinator.schema
        key = task.value.key(schema.key_columns)
        known = self.knowledge.by_key(key) if key else None
        if known is None and key is not None and self.reference is not None:
            if self.rng.random() < self.profile.suspect_unknown_prob:
                known = self.reference.by_key(key)
                if known is None:
                    # Verified fabrication: a confident no.
                    self._verdict_memo[task.value] = False
                    return False
        if known is not None:
            truly_ok = known.subsumes(task.value)
            verdict = (
                truly_ok
                if self.rng.random() < self.profile.judgement_accuracy
                else not truly_ok
            )
        else:
            # Forced answer without evidence: lean plausible-yes.
            verdict = self.rng.random() < UNSURE_YES_BIAS
        self._verdict_memo[task.value] = verdict
        return verdict
