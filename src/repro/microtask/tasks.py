"""Microtask types: the specific questions posed to workers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Union

from repro.core.row import RowValue


@dataclass
class EnumerateTask:
    """"Name an entity satisfying the task (not among *exclusions*)."

    The requester lists already-collected keys, but tasks answered
    concurrently cannot see each other's answers — the duplication the
    paper's transparency argument is about.
    """

    task_id: str
    exclusions: frozenset[tuple]
    slot: int

    kind = "enumerate"


@dataclass
class FillTask:
    """"Provide the value of *column* for the entity keyed *key*."."""

    task_id: str
    key: tuple
    key_values: RowValue
    column: str
    slot: int

    kind = "fill"


@dataclass
class VerifyTask:
    """"Is this row correct?" — one worker's yes/no for majority voting."""

    task_id: str
    value: RowValue
    slot: int

    kind = "verify"


Microtask = Union[EnumerateTask, FillTask, VerifyTask]


@dataclass
class MicrotaskAnswer:
    """A worker's submission for one task.

    Attributes:
        task_id: the answered task.
        worker_id: who answered.
        payload: enumerate -> RowValue of key columns; fill -> the cell
            value; verify -> bool.  None means the worker skipped (does
            not know) and the task must be reassigned.
    """

    task_id: str
    worker_id: str
    payload: Any


class TaskIdFactory:
    """Sequential task identifiers."""

    def __init__(self, prefix: str = "mt") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def next(self) -> str:
        return f"{self._prefix}-{next(self._counter)}"
