"""The microtask coordinator: decompose, assign, assemble, verify.

One *slot* per required row.  Each slot walks a state machine:

    enumerating -> filling -> verifying -> done

- **enumerating**: one open EnumerateTask asking for a new primary key
  (the exclusion list is frozen at task creation — concurrent slots can
  and do collect duplicate keys, which the coordinator detects on
  submission and redoes).
- **filling**: one FillTask per non-key column, answerable in parallel
  by different workers.
- **verifying**: majority-of-three with short-cutting, mirroring
  CrowdFill's scoring function: two agreeing votes decide; a 1-1 split
  asks a third worker.  A rejected row retries its fills once, then
  falls back to re-enumeration (the requester cannot tell which cell
  was wrong — a structural disadvantage versus row-level voting on a
  visible table).

Workers *pull* tasks; a task is assigned to at most one worker at a
time, and a skip (worker does not know the answer) reopens the task for
everyone else — each hop paying the acceptance overhead again.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.row import RowValue
from repro.core.schema import Schema
from repro.microtask.tasks import (
    EnumerateTask,
    FillTask,
    Microtask,
    MicrotaskAnswer,
    TaskIdFactory,
    VerifyTask,
)
from repro.sim import Simulator

VERIFY_ACCEPT = 2
"""Agreeing votes that decide a row (majority of three, short-cut)."""

MAX_FILL_RETRIES = 1
"""Refill attempts after a rejected verification before re-enumerating."""


class SlotPhase(enum.Enum):
    ENUMERATING = "enumerating"
    FILLING = "filling"
    VERIFYING = "verifying"
    DONE = "done"


@dataclass
class _Slot:
    index: int
    phase: SlotPhase = SlotPhase.ENUMERATING
    key: tuple | None = None
    key_values: RowValue = field(default_factory=RowValue)
    values: dict = field(default_factory=dict)
    pending_columns: set = field(default_factory=set)
    yes_votes: int = 0
    no_votes: int = 0
    fill_retries: int = 0
    enumerator: str | None = None

    def row_value(self) -> RowValue:
        return RowValue(self.values)


@dataclass
class CoordinatorStats:
    """Counters quantifying the baseline's overheads."""

    tasks_issued: dict = field(default_factory=lambda: {
        "enumerate": 0, "fill": 0, "verify": 0,
    })
    answers: int = 0
    skips: int = 0
    duplicates: int = 0
    rejected_rows: int = 0
    reenumerations: int = 0
    completion_time: float | None = None

    @property
    def total_tasks(self) -> int:
        return sum(self.tasks_issued.values())


class MicrotaskCoordinator:
    """Runs one microtask-based collection of *target_rows* rows."""

    def __init__(
        self,
        sim: Simulator,
        schema: Schema,
        target_rows: int,
        skip_limit: int = 12,
    ) -> None:
        self.sim = sim
        self.schema = schema
        self.slots = [_Slot(index=i) for i in range(target_rows)]
        self.skip_limit = skip_limit
        self.stats = CoordinatorStats()
        self._ids = TaskIdFactory()
        self._open: list[Microtask] = []
        self._in_flight: dict[str, tuple[Microtask, str]] = {}
        self._skipped_by: dict[str, set[str]] = {}  # task_id -> worker_ids
        self._skip_counts: dict[str, int] = {}
        self._verify_voters: dict[int, set[str]] = {}  # slot -> worker_ids
        self._committed_keys: set[tuple] = set()
        self._registered: set[str] = set()
        for slot in self.slots:
            self._issue_enumerate(slot)

    def register_worker(self, worker_id: str) -> None:
        """Declare a worker in the pool (idempotent; rejoiners re-register).

        Knowing the pool lets the coordinator detect *voter exhaustion*:
        a row whose eligible verifiers (everyone but its enumerator and
        prior voters) are all spent resolves by majority of the votes
        actually received — a small crew cannot be allowed to wedge on
        a 1-1 split with nobody left to break the tie.
        """
        self._registered.add(worker_id)

    def release_worker(self, worker_id: str, deregister: bool = False) -> int:
        """A worker dropped mid-assignment: reopen their in-flight tasks.

        The microtask analogue of a HIT abandonment/return — the
        assignment goes back to the open pool for anyone (including the
        same worker after rejoining) to pick up.  With *deregister* the
        worker also leaves the known pool, which may resolve rows whose
        remaining verifiers all just left.  Returns the number of tasks
        reopened.
        """
        abandoned = [
            task_id
            for task_id, (_, assignee) in self._in_flight.items()
            if assignee == worker_id
        ]
        for task_id in abandoned:
            task, _ = self._in_flight.pop(task_id)
            self._open.append(task)
        if deregister:
            self._registered.discard(worker_id)
        for slot in self.slots:
            self._check_verify_exhaustion(slot)
        return len(abandoned)

    # -- progress -----------------------------------------------------------

    @property
    def completed(self) -> bool:
        return all(slot.phase is SlotPhase.DONE for slot in self.slots)

    def final_rows(self) -> list[RowValue]:
        """The assembled table (complete, verified rows)."""
        return [
            slot.row_value()
            for slot in self.slots
            if slot.phase is SlotPhase.DONE
        ]

    # -- worker-facing API -----------------------------------------------------

    def next_task(self, worker_id: str) -> Microtask | None:
        """Assign an open task this worker is eligible for, or None.

        Verification excludes the row's enumerator (you do not certify
        your own entity) and repeat voters.  A worker who skipped a
        fill/enumerate task earlier may get it again once no fresh
        worker wants it — skips mean "didn't know off-hand", and the
        worker may look the fact up on a second encounter.
        """
        assignable = self._find_task(worker_id, allow_reskip=False)
        if assignable is None:
            assignable = self._find_task(worker_id, allow_reskip=True)
        return assignable

    def _find_task(
        self, worker_id: str, allow_reskip: bool
    ) -> Microtask | None:
        for index, task in enumerate(self._open):
            skippers = self._skipped_by.get(task.task_id, set())
            if worker_id in skippers and not (
                allow_reskip and not isinstance(task, VerifyTask)
            ):
                continue
            if isinstance(task, VerifyTask):
                slot = self.slots[task.slot]
                if worker_id == slot.enumerator:
                    continue
                if worker_id in self._verify_voters.get(task.slot, set()):
                    continue
            self._open.pop(index)
            self._in_flight[task.task_id] = (task, worker_id)
            return task
        return None

    def submit(self, answer: MicrotaskAnswer) -> None:
        """Process a worker's answer (or skip) and advance the slot.

        Raises:
            KeyError: unknown or double-submitted task id.
        """
        task, assignee = self._in_flight.pop(answer.task_id)
        if assignee != answer.worker_id:
            raise KeyError(
                f"task {answer.task_id!r} was assigned to {assignee!r}, "
                f"not {answer.worker_id!r}"
            )
        self.stats.answers += 1
        if answer.payload is None:
            # Skip: reopen for everyone else.
            self.stats.skips += 1
            self._skipped_by.setdefault(task.task_id, set()).add(
                answer.worker_id
            )
            self._skip_counts[task.task_id] = (
                self._skip_counts.get(task.task_id, 0) + 1
            )
            if (
                isinstance(task, FillTask)
                and self._skip_counts[task.task_id] >= self.skip_limit
            ):
                # Nobody can answer: the enumerated key is presumably
                # bad (e.g. a typo); expire the row and start over —
                # the microtask analogue of HIT expiry.
                self._abandon_key(self.slots[task.slot])
                return
            self._open.append(task)
            return

        if isinstance(task, EnumerateTask):
            self._on_enumerate(task, answer)
        elif isinstance(task, FillTask):
            self._on_fill(task, answer)
        else:
            self._on_verify(task, answer)
        for slot in self.slots:
            self._check_verify_exhaustion(slot)
        if self.completed and self.stats.completion_time is None:
            self.stats.completion_time = self.sim.now

    # -- state machine -------------------------------------------------------------

    def _abandon_key(self, slot: _Slot) -> None:
        """Give up on a slot's current key: drop its open/in-flight fill
        tasks and re-enumerate."""
        self.stats.reenumerations += 1
        self._open = [
            task
            for task in self._open
            if not (isinstance(task, FillTask) and task.slot == slot.index)
        ]
        # In-flight fills for the dead key become stale; _on_fill drops
        # them via the key check when they come back.
        self._issue_enumerate(slot)

    def _issue_enumerate(self, slot: _Slot) -> None:
        slot.phase = SlotPhase.ENUMERATING
        slot.key = None
        slot.values = {}
        slot.yes_votes = slot.no_votes = 0
        slot.fill_retries = 0
        exclusions = set(self._committed_keys)
        for other in self.slots:
            if other.key is not None:
                exclusions.add(other.key)
        task = EnumerateTask(
            task_id=self._ids.next(),
            exclusions=frozenset(exclusions),
            slot=slot.index,
        )
        self.stats.tasks_issued["enumerate"] += 1
        self._open.append(task)

    def _on_enumerate(self, task: EnumerateTask, answer: MicrotaskAnswer) -> None:
        slot = self.slots[task.slot]
        key_values: RowValue = answer.payload
        key = key_values.key(self.schema.key_columns)
        if key is None:
            # Malformed answer: treat as a skip-with-cost.
            self.stats.skips += 1
            self._issue_enumerate(slot)
            return
        if key in self._committed_keys or any(
            other.key == key for other in self.slots if other is not slot
        ):
            # The duplicate the paper's transparency argument predicts.
            self.stats.duplicates += 1
            self._issue_enumerate(slot)
            return
        slot.key = key
        slot.key_values = key_values
        slot.values = dict(key_values)
        slot.enumerator = answer.worker_id
        self._start_fills(slot)

    def _start_fills(self, slot: _Slot) -> None:
        slot.phase = SlotPhase.FILLING
        slot.pending_columns = {
            column
            for column in self.schema.column_names
            if column not in slot.values
        }
        if not slot.pending_columns:
            self._start_verification(slot)
            return
        for column in sorted(slot.pending_columns):
            task = FillTask(
                task_id=self._ids.next(),
                key=slot.key,  # type: ignore[arg-type]
                key_values=slot.key_values,
                column=column,
                slot=slot.index,
            )
            self.stats.tasks_issued["fill"] += 1
            self._open.append(task)

    def _on_fill(self, task: FillTask, answer: MicrotaskAnswer) -> None:
        slot = self.slots[task.slot]
        if slot.key != task.key:
            return  # stale answer for a re-enumerated slot
        slot.values[task.column] = answer.payload
        slot.pending_columns.discard(task.column)
        if not slot.pending_columns and slot.phase is SlotPhase.FILLING:
            self._start_verification(slot)

    def _start_verification(self, slot: _Slot) -> None:
        slot.phase = SlotPhase.VERIFYING
        slot.yes_votes = slot.no_votes = 0
        self._verify_voters[slot.index] = set()
        for _ in range(VERIFY_ACCEPT):
            self._issue_verify(slot)

    def _issue_verify(self, slot: _Slot) -> None:
        task = VerifyTask(
            task_id=self._ids.next(),
            value=slot.row_value(),
            slot=slot.index,
        )
        self.stats.tasks_issued["verify"] += 1
        self._open.append(task)

    def _on_verify(self, task: VerifyTask, answer: MicrotaskAnswer) -> None:
        slot = self.slots[task.slot]
        if slot.phase is not SlotPhase.VERIFYING or task.value != slot.row_value():
            return  # stale vote for an older row version
        self._verify_voters.setdefault(slot.index, set()).add(answer.worker_id)
        if answer.payload:
            slot.yes_votes += 1
        else:
            slot.no_votes += 1
        if slot.yes_votes >= VERIFY_ACCEPT:
            slot.phase = SlotPhase.DONE
            assert slot.key is not None
            self._committed_keys.add(slot.key)
            return
        if slot.no_votes >= VERIFY_ACCEPT:
            self._reject(slot)
            return
        if slot.yes_votes + slot.no_votes >= 2 and (
            slot.yes_votes < VERIFY_ACCEPT and slot.no_votes < VERIFY_ACCEPT
        ):
            self._issue_verify(slot)  # the 1-1 tie-breaker

    def _check_verify_exhaustion(self, slot: _Slot) -> None:
        """Resolve a verification nobody is left to vote on.

        Only applies when the worker pool is known (registered) and no
        verify task for the slot is in a worker's hands.
        """
        if slot.phase is not SlotPhase.VERIFYING or not self._registered:
            return
        if any(
            isinstance(task, VerifyTask) and task.slot == slot.index
            for task, _ in self._in_flight.values()
        ):
            return
        open_verifies = [
            task
            for task in self._open
            if isinstance(task, VerifyTask) and task.slot == slot.index
        ]
        if not open_verifies:
            return
        eligible = self._registered - {slot.enumerator} - self._verify_voters.get(
            slot.index, set()
        )
        if eligible:
            return
        self._open = [t for t in self._open if t not in open_verifies]
        if slot.yes_votes > slot.no_votes:
            slot.phase = SlotPhase.DONE
            assert slot.key is not None
            self._committed_keys.add(slot.key)
        else:
            self._reject(slot)

    def _reject(self, slot: _Slot) -> None:
        self.stats.rejected_rows += 1
        if slot.fill_retries < MAX_FILL_RETRIES:
            slot.fill_retries += 1
            slot.values = dict(slot.key_values)
            self._start_fills(slot)
        else:
            self.stats.reenumerations += 1
            self._issue_enumerate(slot)
