"""Unit tests for update-document evaluation."""

import pytest

from repro.docstore import UpdateError, apply_update


def test_replacement_keeps_id():
    doc = {"_id": "x", "a": 1, "b": 2}
    out = apply_update(doc, {"c": 3})
    assert out == {"_id": "x", "c": 3}


def test_replacement_does_not_mutate_original():
    doc = {"_id": "x", "a": 1}
    apply_update(doc, {"b": 2})
    assert doc == {"_id": "x", "a": 1}


def test_set_top_level_and_nested():
    out = apply_update({"a": 1}, {"$set": {"b": 2, "c.d": 3}})
    assert out == {"a": 1, "b": 2, "c": {"d": 3}}


def test_set_deepcopies_operand():
    operand = {"inner": [1]}
    out = apply_update({}, {"$set": {"x": operand}})
    operand["inner"].append(2)
    assert out["x"] == {"inner": [1]}


def test_unset():
    out = apply_update({"a": 1, "b": 2}, {"$unset": {"a": ""}})
    assert out == {"b": 2}


def test_unset_missing_is_noop():
    assert apply_update({"a": 1}, {"$unset": {"zz": ""}}) == {"a": 1}


def test_inc_and_mul():
    out = apply_update({"n": 10}, {"$inc": {"n": 5, "m": 1}})
    assert out == {"n": 15, "m": 1}
    out = apply_update({"n": 10}, {"$mul": {"n": 3}})
    assert out["n"] == 30


def test_inc_non_numeric_target_raises():
    with pytest.raises(UpdateError):
        apply_update({"n": "text"}, {"$inc": {"n": 1}})


def test_inc_non_numeric_operand_raises():
    with pytest.raises(UpdateError):
        apply_update({}, {"$inc": {"n": "1"}})


def test_min_max():
    assert apply_update({"n": 5}, {"$min": {"n": 3}})["n"] == 3
    assert apply_update({"n": 5}, {"$min": {"n": 7}})["n"] == 5
    assert apply_update({"n": 5}, {"$max": {"n": 7}})["n"] == 7
    assert apply_update({}, {"$max": {"n": 7}})["n"] == 7


def test_rename():
    out = apply_update({"a": 1}, {"$rename": {"a": "b"}})
    assert out == {"b": 1}


def test_rename_missing_is_noop():
    assert apply_update({"a": 1}, {"$rename": {"zz": "b"}}) == {"a": 1}


def test_push_pull_add_to_set():
    out = apply_update({"xs": [1]}, {"$push": {"xs": 2}})
    assert out["xs"] == [1, 2]
    out = apply_update({"xs": [1, 2, 1]}, {"$pull": {"xs": 1}})
    assert out["xs"] == [2]
    out = apply_update({"xs": [1]}, {"$addToSet": {"xs": 1}})
    assert out["xs"] == [1]
    out = apply_update({"xs": [1]}, {"$addToSet": {"xs": 2}})
    assert out["xs"] == [1, 2]


def test_push_creates_list():
    assert apply_update({}, {"$push": {"xs": 1}})["xs"] == [1]


def test_push_non_list_target_raises():
    with pytest.raises(UpdateError):
        apply_update({"xs": 5}, {"$push": {"xs": 1}})


def test_mixed_operator_and_plain_keys_rejected():
    with pytest.raises(UpdateError):
        apply_update({}, {"$set": {"a": 1}, "b": 2})


def test_unknown_operator_rejected():
    with pytest.raises(UpdateError):
        apply_update({}, {"$explode": {"a": 1}})


def test_id_mutation_through_inc_rejected():
    with pytest.raises(UpdateError):
        apply_update({"_id": "x"}, {"$inc": {"_id": 1}})


def test_path_through_scalar_raises():
    with pytest.raises(UpdateError):
        apply_update({"a": 5}, {"$set": {"a.b": 1}})
