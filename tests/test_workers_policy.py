"""Unit tests for worker behaviour policies and error injection."""

import random

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import Column, DataType, soccer_player_schema
from repro.datasets import GroundTruth, SoccerPlayerUniverse
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator
from repro.workers import (
    CopierPolicy,
    DiligentPolicy,
    DownvoteAction,
    FillAction,
    IdleAction,
    SpammerPolicy,
    UpvoteAction,
    WorkerProfile,
)
from repro.workers.errors import corrupt_value

SCORING = ThresholdScoring(2)


def make_world(template=None, num_clients=1):
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, template or Template.cardinality(3)
    )
    clients = []
    for i in range(num_clients):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=RngStreams(i))
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()
    return sim, backend, clients


def make_knowledge(size=40, seed=1):
    universe = SoccerPlayerUniverse(seed=seed, size=size, include_dob=False)
    return universe.ground_truth()


def run_action(sim, client, action):
    if isinstance(action, FillAction):
        client.fill(action.row_id, action.column, action.value)
    elif isinstance(action, UpvoteAction):
        client.upvote(action.row_id)
    elif isinstance(action, DownvoteAction):
        client.downvote(action.row_id)
    sim.run()


class TestDiligentPolicy:
    def test_fills_known_value_on_empty_table(self):
        sim, backend, (client,) = make_world()
        truth = make_knowledge()
        policy = DiligentPolicy(truth, WorkerProfile(fill_accuracy=1.0))
        action = policy.choose(client, random.Random(0))
        assert isinstance(action, FillAction)
        # The chosen value belongs to some true row.
        assert any(
            dict(row).get(action.column) == action.value for row in truth.rows
        )

    def test_completes_table_single_handedly(self):
        """A perfectly accurate worker drives an entire 2-row collection
        to completed rows (minus the external upvotes)."""
        sim, backend, (client,) = make_world(Template.cardinality(2))
        truth = make_knowledge()
        policy = DiligentPolicy(
            truth, WorkerProfile(fill_accuracy=1.0, vote_affinity=0.0)
        )
        rng = random.Random(0)
        for _ in range(60):
            action = policy.choose(client, rng)
            if isinstance(action, IdleAction):
                break
            run_action(sim, client, action)
            if isinstance(action, FillAction):
                policy.note_fill(client, client.replica.table.row_ids()[-1])
        complete = [
            r for r in backend.replica.table.rows()
            if r.value.is_complete(client.schema.column_names)
        ]
        assert len(complete) >= 2

    def test_never_voting_profile_never_votes(self):
        sim, backend, (client,) = make_world()
        truth = make_knowledge()
        policy = DiligentPolicy(
            truth, WorkerProfile(vote_affinity=0.0, fill_accuracy=1.0)
        )
        rng = random.Random(1)
        for _ in range(40):
            action = policy.choose(client, rng)
            if isinstance(action, IdleAction):
                break
            assert not isinstance(action, (UpvoteAction, DownvoteAction))
            run_action(sim, client, action)

    def test_avoids_duplicating_started_entities(self):
        sim, backend, (client,) = make_world(Template.cardinality(2))
        truth = make_knowledge(size=5)
        policy = DiligentPolicy(truth, WorkerProfile(fill_accuracy=1.0))
        rng = random.Random(0)
        # Fill one key into the first empty row.
        first = policy.choose(client, rng)
        assert isinstance(first, FillAction)
        run_action(sim, client, first)
        policy.note_fill(client, client.replica.table.row_ids()[-1])
        # Force the policy off its focus row; a fresh-entity pick for
        # the second row must not reuse the started entity's name.
        policy._focus_row_id = None
        second = policy.choose(client, rng)
        if isinstance(second, FillAction) and second.column == "name":
            assert second.value != first.value

    def test_upvotes_correct_complete_row(self):
        sim, backend, clients = make_world(num_clients=2)
        truth = make_knowledge()
        entity = truth.rows[0]
        # Worker 0 completes a true row.
        row_id = clients[0].replica.table.row_ids()[0]
        for column in clients[0].schema.column_names:
            row_id = clients[0].fill(row_id, column, entity[column])
        sim.run()
        policy = DiligentPolicy(
            truth,
            WorkerProfile(vote_affinity=1.0, judgement_accuracy=1.0),
        )
        action = policy.choose(clients[1], random.Random(0))
        assert isinstance(action, UpvoteAction)
        assert clients[1].row(action.row_id).value == entity

    def test_downvotes_wrong_complete_row(self):
        sim, backend, clients = make_world(num_clients=2)
        truth = make_knowledge()
        entity = dict(truth.rows[0])
        entity["caps"] = entity["caps"] + 7  # wrong value
        row_id = clients[0].replica.table.row_ids()[0]
        for column in clients[0].schema.column_names:
            row_id = clients[0].fill(row_id, column, entity[column])
        sim.run()
        policy = DiligentPolicy(
            truth,
            WorkerProfile(vote_affinity=1.0, judgement_accuracy=1.0),
        )
        action = policy.choose(clients[1], random.Random(0))
        assert isinstance(action, DownvoteAction)

    def test_reference_lookup_refutes_fabricated_entity(self):
        sim, backend, clients = make_world(num_clients=2)
        truth = make_knowledge()
        fake = {
            "name": "Totally Madeup", "nationality": "Nowhere",
            "position": "FW", "caps": 90, "goals": 10,
        }
        row_id = clients[0].replica.table.row_ids()[0]
        for column in clients[0].schema.column_names:
            row_id = clients[0].fill(row_id, column, fake[column])
        sim.run()
        empty_knowledge = GroundTruth(truth.schema, [])
        policy = DiligentPolicy(
            empty_knowledge,
            WorkerProfile(vote_affinity=1.0, suspect_unknown_prob=1.0),
            reference=truth,
        )
        action = policy.choose(clients[1], random.Random(0))
        assert isinstance(action, DownvoteAction)

    def test_no_reference_no_knowledge_idles_on_votes(self):
        sim, backend, clients = make_world(num_clients=2)
        truth = make_knowledge()
        entity = truth.rows[0]
        row_id = clients[0].replica.table.row_ids()[0]
        for column in clients[0].schema.column_names:
            row_id = clients[0].fill(row_id, column, entity[column])
        sim.run()
        empty_knowledge = GroundTruth(truth.schema, [])
        policy = DiligentPolicy(
            empty_knowledge,
            WorkerProfile(vote_affinity=1.0, suspect_unknown_prob=1.0),
            reference=None,
        )
        action = policy.choose(clients[1], random.Random(0))
        assert isinstance(action, IdleAction)

    def test_does_not_upvote_already_accepted_rows(self):
        sim, backend, clients = make_world(num_clients=3)
        truth = make_knowledge()
        entity = truth.rows[0]
        row_id = clients[0].replica.table.row_ids()[0]
        for column in clients[0].schema.column_names:
            row_id = clients[0].fill(row_id, column, entity[column])
        sim.run()
        clients[1].upvote(row_id)  # score now positive (2 ups)
        sim.run()
        policy = DiligentPolicy(
            truth, WorkerProfile(vote_affinity=1.0, judgement_accuracy=1.0,
                                 knowledge_fraction=1.0)
        )
        action = policy.choose(clients[2], random.Random(0))
        assert not isinstance(action, UpvoteAction)


class TestAdversarialPolicies:
    def test_spammer_fills_garbage_fast(self):
        sim, backend, (client,) = make_world()
        policy = SpammerPolicy()
        action = policy.choose(client, random.Random(0))
        assert isinstance(action, FillAction)
        # The garbage value is type-valid (the client accepts it).
        client.schema.validate_value(action.column, action.value)

    def test_spammer_idles_when_table_complete(self):
        sim, backend, (client,) = make_world(Template.cardinality(1))
        truth = make_knowledge()
        entity = truth.rows[0]
        row_id = client.replica.table.row_ids()[0]
        for column in client.schema.column_names:
            row_id = client.fill(row_id, column, entity[column])
        sim.run()
        action = SpammerPolicy().choose(client, random.Random(0))
        assert isinstance(action, IdleAction)

    def test_copier_upvotes_any_complete_row(self):
        sim, backend, clients = make_world(num_clients=2)
        truth = make_knowledge()
        entity = truth.rows[0]
        row_id = clients[0].replica.table.row_ids()[0]
        for column in clients[0].schema.column_names:
            row_id = clients[0].fill(row_id, column, entity[column])
        sim.run()
        action = CopierPolicy().choose(clients[1], random.Random(0))
        assert isinstance(action, UpvoteAction)

    def test_copier_idles_without_votable_rows(self):
        sim, backend, (client,) = make_world()
        action = CopierPolicy().choose(client, random.Random(0))
        assert isinstance(action, IdleAction)


class TestErrorInjection:
    def test_corrupt_differs_and_validates(self):
        schema = soccer_player_schema()
        rng = random.Random(0)
        for column_name, value in [
            ("name", "Lionel Messi"),
            ("nationality", "Brazil"),
            ("position", "FW"),
            ("caps", 83),
            ("goals", 0),
        ]:
            column = schema.column(column_name)
            for _ in range(20):
                corrupted = corrupt_value(rng, column, value)
                assert corrupted != value
                column.validate(corrupted)

    def test_corrupt_date(self):
        column = Column("dob", DataType.DATE)
        rng = random.Random(0)
        corrupted = corrupt_value(rng, column, "1987-06-24")
        assert corrupted != "1987-06-24"
        column.validate(corrupted)

    def test_corrupt_bool_and_float(self):
        rng = random.Random(0)
        assert corrupt_value(rng, Column("b", DataType.BOOL), True) is False
        out = corrupt_value(rng, Column("f", DataType.FLOAT), 1.5)
        assert out != 1.5

    def test_single_member_domain_falls_back(self):
        column = Column("only", domain=frozenset({"x"}))
        assert corrupt_value(random.Random(0), column, "x") == "x"
