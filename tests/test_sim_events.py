"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def test_push_returns_event():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert isinstance(event, Event)
    assert event.time == 1.0


def test_pop_orders_by_time():
    queue = EventQueue()
    queue.push(2.0, lambda: "b")
    queue.push(1.0, lambda: "a")
    queue.push(3.0, lambda: "c")
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_ties_break_by_scheduling_order():
    queue = EventQueue()
    first = queue.push(1.0, lambda: "first")
    second = queue.push(1.0, lambda: "second")
    assert queue.pop() is first
    assert queue.pop() is second


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    doomed = queue.push(1.0, lambda: "doomed")
    survivor = queue.push(2.0, lambda: "ok")
    doomed.cancel()
    assert queue.pop() is survivor
    assert queue.pop() is None


def test_len_excludes_cancelled():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None)
    drop = queue.push(2.0, lambda: None)
    drop.cancel()
    assert len(queue) == 1
    assert queue.pop() is keep


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert queue.pop() is None
    assert len(queue) == 0


def test_many_events_fifo_within_same_time():
    queue = EventQueue()
    events = [queue.push(5.0, lambda i=i: i) for i in range(50)]
    popped = [queue.pop() for _ in range(50)]
    assert popped == events


def test_event_ordering_is_stable_after_interleaved_cancel():
    queue = EventQueue()
    a = queue.push(1.0, lambda: None)
    b = queue.push(1.0, lambda: None)
    c = queue.push(1.0, lambda: None)
    b.cancel()
    assert queue.pop() is a
    assert queue.pop() is c


@pytest.mark.parametrize("n", [0, 1, 17])
def test_len_matches_pushes(n):
    queue = EventQueue()
    for i in range(n):
        queue.push(float(i), lambda: None)
    assert len(queue) == n
