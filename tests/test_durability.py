"""Unit tests for repro.durability: the WAL record codec, the
newline-framed durable log (including torn tails and mid-log
corruption), and cut-addressed checkpoints."""

import json

import pytest

from repro.cdc.events import Cut
from repro.core.messages import (
    InsertMessage,
    ReplaceMessage,
    UpvoteMessage,
)
from repro.core.row import RowValue
from repro.durability import (
    DurabilityConfig,
    DurableLog,
    DurableStore,
    WalCorruptionError,
    WalRecord,
    decode_checkpoint,
    encode_checkpoint,
    wal_record_from_dict,
)
from repro.server.backend import BootstrapState


def make_record(lseq=0, shard_id=0, worker="w0", timestamp=1.5):
    return WalRecord(
        shard_id=shard_id,
        lseq=lseq,
        worker_id=worker,
        timestamp=timestamp,
        message=ReplaceMessage(
            old_id=f"r{lseq}",
            new_id=f"r{lseq + 1}",
            value=RowValue({"name": "Xavi", "team": "Barcelona"}),
            column="team",
            filled_value="Barcelona",
        ),
    )


# -- WalRecord codec ---------------------------------------------------------


def test_wal_record_round_trips_and_builds_fresh_objects():
    record = make_record()
    document = json.loads(json.dumps(record.to_dict()))
    rebuilt = wal_record_from_dict(document)
    assert rebuilt == record
    assert rebuilt.message is not record.message


def test_wal_record_round_trips_every_message_kind():
    messages = [
        InsertMessage(row_id="r1"),
        UpvoteMessage(value=RowValue({"name": "Xavi"}), auto=True),
    ]
    for message in messages:
        record = WalRecord(
            shard_id=2, lseq=7, worker_id="w3", timestamp=9.25,
            message=message,
        )
        assert wal_record_from_dict(record.to_dict()) == record


# -- DurableLog --------------------------------------------------------------


def test_log_replay_returns_records_in_append_order():
    log = DurableLog()
    records = [make_record(lseq=i) for i in range(5)]
    for record in records:
        log.append(record)
    replayed, torn = log.replay()
    assert replayed == records
    assert torn == 0
    assert log.records_appended == 5


def test_log_discards_torn_tail_silently():
    log = DurableLog()
    log.append(make_record(lseq=0))
    size_one = log.size_bytes
    log.append(make_record(lseq=1))
    # Tear the second record mid-write: everything after its first byte.
    log.truncate_tail(log.size_bytes - size_one - 1)
    replayed, torn = log.replay()
    assert [r.lseq for r in replayed] == [0]
    assert torn > 0


def test_log_tearing_the_whole_last_record_is_a_clean_log():
    log = DurableLog()
    log.append(make_record(lseq=0))
    size_one = log.size_bytes
    log.append(make_record(lseq=1))
    log.truncate_tail(log.size_bytes - size_one)  # exactly at the frame
    replayed, torn = log.replay()
    assert [r.lseq for r in replayed] == [0]
    assert torn == 0


def test_truncate_tail_validates_bounds():
    log = DurableLog()
    log.append(make_record())
    with pytest.raises(ValueError):
        log.truncate_tail(-1)
    with pytest.raises(ValueError):
        log.truncate_tail(log.size_bytes + 1)
    log.truncate_tail(0)  # no-op tear is fine
    assert log.replay()[0] != []


def test_mid_log_corruption_raises():
    log = DurableLog()
    log.append(make_record(lseq=0))
    log.append(make_record(lseq=1))
    # Flip bytes inside the *terminated* first record: this is damage,
    # not a torn write, and recovery must refuse to guess.
    log._buf[5:9] = b"\xff\xff\xff\xff"
    with pytest.raises(WalCorruptionError):
        log.replay()


def test_empty_log_replays_to_nothing():
    assert DurableLog().replay() == ([], 0)


# -- DurabilityConfig / DurableStore -----------------------------------------


def test_config_validates_interval():
    with pytest.raises(ValueError):
        DurabilityConfig(checkpoint_interval=0)
    assert DurabilityConfig().checkpoint_interval == 256


def test_store_checkpoint_cadence():
    store = DurableStore(DurabilityConfig(checkpoint_interval=3))
    assert not store.checkpoint_due
    for i in range(3):
        store.append(make_record(lseq=i))
    assert store.checkpoint_due
    store.save_checkpoint({"version": 1, "marker": "a"})
    assert not store.checkpoint_due
    assert store.checkpoints_taken == 1
    assert store.records_since_checkpoint == 0
    # The log itself is never truncated by a checkpoint.
    assert store.log.records_appended == 3


def test_store_load_checkpoint_builds_fresh_document():
    store = DurableStore()
    assert store.load_checkpoint() is None
    assert not store.has_checkpoint
    document = {"version": 1, "state": {"rows": [["r1", {"a": 1}, 2, 0]]}}
    store.save_checkpoint(document)
    loaded = store.load_checkpoint()
    assert loaded == document
    assert loaded is not document
    assert store.load_checkpoint() is not loaded


# -- Checkpoint codec --------------------------------------------------------


def make_state():
    return BootstrapState(
        rows=[
            ("r1", {"name": "Xavi", "team": "Barcelona"}, 2, 0),
            ("r2", {"name": "Iniesta"}, 1, 1),
        ],
        upvote_history=[({"name": "Xavi", "team": "Barcelona"}, 2)],
        downvote_history=[({"name": "Iniesta"}, 1)],
        superseded=["r0"],
    )


def test_checkpoint_round_trip():
    cut = Cut(position=3, counts=((0, 2), (1, 1)))
    central = {"current": [["r1", 0]], "dropped": []}
    document = json.loads(
        json.dumps(encode_checkpoint(make_state(), cut, central))
    )
    state, decoded_cut, decoded_central = decode_checkpoint(document)
    assert state == make_state()
    assert decoded_cut == cut
    assert decoded_central == central


def test_checkpoint_without_central_round_trips():
    cut = Cut(position=0, counts=())
    state, decoded_cut, central = decode_checkpoint(
        encode_checkpoint(make_state(), cut)
    )
    assert state == make_state()
    assert decoded_cut == cut
    assert central is None


def test_checkpoint_rejects_unknown_version():
    document = encode_checkpoint(make_state(), Cut(position=0, counts=()))
    document["version"] = 99
    with pytest.raises(WalCorruptionError):
        decode_checkpoint(document)


def test_checkpoint_rejects_missing_keys():
    document = encode_checkpoint(make_state(), Cut(position=0, counts=()))
    del document["state"]
    with pytest.raises(WalCorruptionError):
        decode_checkpoint(document)
