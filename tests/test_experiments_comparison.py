"""Tests for E9: the table-filling vs microtask comparison driver."""

import pytest

from repro.experiments import ExperimentConfig, run_comparison


@pytest.fixture(scope="module")
def report():
    config = ExperimentConfig(seed=7, num_workers=4, target_rows=6)
    return run_comparison(seed=7, config=config)


def test_both_approaches_complete(report):
    assert report.table_filling.completed
    assert report.microtask.completed
    assert report.table_filling.final_rows == 6
    assert report.microtask.final_rows == 6


def test_table_filling_is_faster(report):
    assert report.speedup() > 1.0


def test_microtask_pays_acceptance_overhead(report):
    assert report.microtask.overhead_seconds > 0
    assert report.table_filling.overhead_seconds == 0


def test_quality_comparable(report):
    assert report.table_filling.accuracy >= 0.8
    assert report.microtask.accuracy >= 0.8


def test_format_table_mentions_both(report):
    text = report.format_table()
    assert "table-filling" in text
    assert "microtask" in text
    assert "accept overhead" in text


def test_speedup_nan_when_incomplete():
    from repro.experiments.comparison import ApproachOutcome, ComparisonReport
    import math

    incomplete = ApproachOutcome(
        approach="microtask", completed=False, duration=None, accuracy=0.0,
        final_rows=0, worker_actions=0, wasted_work=0, overhead_seconds=0.0,
    )
    done = ApproachOutcome(
        approach="table-filling", completed=True, duration=100.0,
        accuracy=1.0, final_rows=5, worker_actions=10, wasted_work=0,
        overhead_seconds=0.0,
    )
    report = ComparisonReport(seed=0, table_filling=done, microtask=incomplete)
    assert math.isnan(report.speedup())
    assert "n/a" in report.format_table()


class TestCostComparison:
    def test_costs_match_at_same_wage(self):
        from repro.experiments import ExperimentConfig, run_cost_comparison

        config = ExperimentConfig(seed=7, num_workers=4, target_rows=6)
        report = run_cost_comparison(seed=7, hourly_wage=9.0, config=config)
        assert report.crowdfill_rows == 6
        assert report.microtask_rows == 6
        assert report.crowdfill_cost > 0
        assert report.microtask_cost > 0
        # At matched wages neither approach is drastically cheaper.
        ratio = report.microtask_cost / report.crowdfill_cost
        assert 0.5 <= ratio <= 2.0
        text = report.format_table()
        assert "A11" in text and "cost per row" in text

    def test_task_prices_scale_with_wage(self):
        from repro.experiments import ExperimentConfig, run_cost_comparison

        config = ExperimentConfig(seed=3, num_workers=4, target_rows=5)
        low = run_cost_comparison(seed=3, hourly_wage=6.0, config=config)
        high = run_cost_comparison(seed=3, hourly_wage=12.0, config=config)
        for kind in ("enumerate", "fill", "verify"):
            assert high.task_prices[kind] == pytest.approx(
                2 * low.task_prices[kind]
            )
        assert high.microtask_cost == pytest.approx(2 * low.microtask_cost)
