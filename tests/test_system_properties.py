"""System-level property tests: the full client/server stack under
random worker behaviour.

Where ``test_convergence.py`` exercises the bare formal model, these
tests drive the real components — BackendServer, Central Client,
WorkerClient with its vote policies and the modify/undo extensions —
with hypothesis-generated action schedules, checking:

- convergence of every replica (clients, server, CC) at quiescence;
- the Lemma 3 vote invariants on every copy;
- the Probable Rows Invariant after every run;
- budget conservation of the allocation pipeline on the run's trace.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import OperationError, ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.net import Network, UniformLatency
from repro.pay import AllocationScheme, allocate, analyze_contributions
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)
SCHEMA = soccer_player_schema()

VALUES = {
    "name": ["Messi", "Xavi", "Neymar"],
    "nationality": ["Argentina", "Spain", "Brazil"],
    "position": ["GK", "DF", "MF", "FW"],
    "caps": [80, 90, 99],
    "goals": [0, 10, 30],
}

action_step = st.tuples(
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False),  # at
    st.integers(min_value=0, max_value=9),  # client pick
    st.sampled_from(
        ["fill", "fill", "fill", "upvote", "downvote", "modify", "undo"]
    ),
    st.integers(min_value=0, max_value=9),  # row pick
    st.integers(min_value=0, max_value=4),  # column pick
    st.integers(min_value=0, max_value=3),  # value pick
)


def _perform(client: WorkerClient, kind, row_pick, column_pick, value_pick):
    table = client.replica.table
    row_ids = table.row_ids()
    if not row_ids:
        return
    row_id = row_ids[row_pick % len(row_ids)]
    columns = SCHEMA.column_names
    column = columns[column_pick % len(columns)]
    value = VALUES[column][value_pick % len(VALUES[column])]
    try:
        if kind == "fill":
            client.fill(row_id, column, value)
        elif kind == "upvote":
            client.upvote(row_id)
        elif kind == "downvote":
            client.downvote(row_id)
        elif kind == "modify":
            client.modify(row_id, column, value)
        else:
            client.undo_last_vote()
    except OperationError:
        pass  # invalid under current state: a no-op, as in the UI


@settings(max_examples=25, deadline=None)
@given(
    schedule=st.lists(action_step, min_size=1, max_size=30),
    num_clients=st.integers(min_value=2, max_value=4),
    net_seed=st.integers(min_value=0, max_value=500),
)
def test_full_stack_converges_under_random_actions(
    schedule, num_clients, net_seed
):
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.01, 2.0),
        streams=RngStreams(net_seed),
    )
    backend = BackendServer(
        sim, network, SCHEMA, SCORING, Template.cardinality(3)
    )
    clients = []
    for i in range(num_clients):
        client = WorkerClient(
            f"w{i}", SCHEMA, SCORING, network,
            streams=RngStreams(i), allow_modify=True,
        )
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()

    for at, client_pick, kind, row_pick, column_pick, value_pick in sorted(
        schedule
    ):
        client = clients[client_pick % num_clients]
        sim.schedule_at(
            max(at, sim.now),
            lambda c=client, k=kind, r=row_pick, col=column_pick, v=value_pick:
            _perform(c, k, r, col, v),
        )
    sim.run()
    assert network.quiescent()

    # 1. Convergence everywhere.
    reference = backend.replica.snapshot()
    reference_history = backend.replica.table.history_snapshot()
    for replica_owner in clients:
        assert replica_owner.snapshot() == reference
        assert (
            replica_owner.replica.table.history_snapshot()
            == reference_history
        )
    assert backend.central.replica.snapshot() == reference

    # 2. Vote invariants on every copy.
    backend.replica.table.check_vote_invariants()
    for client in clients:
        client.replica.table.check_vote_invariants()

    # 3. The PRI holds (possibly on a reduced template).
    assert backend.central.pri_holds()

    # 4. Budget conservation on whatever trace the run produced.
    trace = backend.worker_trace()
    analysis = analyze_contributions(SCHEMA, backend.final_rows(), trace)
    for scheme in AllocationScheme:
        result = allocate(SCHEMA, trace, analysis, budget=10.0, scheme=scheme)
        assert 0 <= result.total_allocated <= 10.0 + 1e-9
        assert result.unspent >= -1e-9
        assert sum(result.by_worker.values()) == pytest.approx(
            result.total_allocated
        )
        # Every paid message belongs to the trace.
        seqs = {record.seq for record in trace}
        assert set(result.amounts_by_seq) <= seqs
