"""The observability layer: registry, tracer, sampler, determinism.

The two properties that make ``repro.obs`` safe to leave wired into
every subsystem are exercised here:

* determinism — same-seed runs export byte-identical metrics and trace
  JSON (telemetry is keyed on sim-time only, never a wall clock);
* isolation — snapshots are deep copies, so they never alias live
  replica state (checked under the aliasing sanitizer too).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import CrowdFillExperiment, ExperimentConfig
from repro.obs import (
    NULL_OBS,
    NULL_SPAN,
    Histogram,
    MetricsRegistry,
    NullObservability,
    Observability,
    SnapshotSampler,
    SpanTracer,
    dump_json,
    resolve,
)
from repro.sim import Simulator


# -- metrics ----------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a.events")
        registry.inc("a.events", 4)
        assert registry.counter_value("a.events") == 5
        assert registry.counter_value("never.touched") == 0

    def test_gauge_keeps_last_value_and_time(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth", 3, time=1.0)
        registry.gauge("queue.depth", 7, time=2.5)
        assert registry.gauge_value("queue.depth") == 7
        exported = registry.to_dict()["gauges"]["queue.depth"]
        assert exported == {"value": 7, "time": 2.5, "updates": 2}

    def test_histogram_log2_buckets(self):
        histogram = Histogram()
        for value in (0.75, 1.5, 3.0, 3.9):
            histogram.observe(value)
        # frexp exponent: 0.75 -> 0, 1.5 -> 1, 3.0/3.9 -> 2.
        assert histogram.buckets == {0: 1, 1: 1, 2: 2}
        assert histogram.count == 4
        assert histogram.min == 0.75 and histogram.max == 3.9
        assert histogram.mean == pytest.approx(9.15 / 4)

    def test_histogram_sentinel_bucket_for_nonpositive(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(-2.0)
        assert histogram.buckets == {-1024: 2}

    def test_empty_histogram_exports_null_bounds(self):
        assert Histogram().to_dict()["min"] is None
        assert math.isinf(Histogram().min)

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.observe("x", 1.0)
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x", 1.0, time=0.0)

    def test_export_sorts_names(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        assert list(registry.to_dict()["counters"]) == ["a", "b"]


# -- tracing ----------------------------------------------------------


class TestSpanTracer:
    def test_span_records_on_close_with_monotone_seq(self):
        clock = {"now": 1.0}
        tracer = SpanTracer(lambda: clock["now"])
        with tracer.span("op", worker="w1") as span:
            clock["now"] = 2.0
            span.set(rows=3)
        tracer.event("tick")
        records = tracer.records()
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0] == {
            "seq": 0,
            "name": "op",
            "start": 1.0,
            "end": 2.0,
            "attrs": {"worker": "w1", "rows": 3},
        }
        # Point events are instantaneous.
        assert records[1]["start"] == records[1]["end"] == 2.0

    def test_double_close_records_once(self):
        tracer = SpanTracer(lambda: 0.0)
        span = tracer.span("op")
        span.close()
        span.close()
        assert len(tracer.records()) == 1

    def test_ring_buffer_evicts_oldest_and_reports_it(self):
        tracer = SpanTracer(lambda: 0.0, capacity=3)
        for index in range(5):
            tracer.event(f"e{index}")
        data = tracer.to_dict()
        assert [r["name"] for r in data["spans"]] == ["e2", "e3", "e4"]
        assert data["recorded"] == 5
        assert data["evicted"] == 2

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set(anything=1)
        span.close()  # no error, records nothing anywhere


# -- the facade and the no-op -----------------------------------------


class TestObservabilityFacade:
    def test_resolve_convention(self):
        assert resolve(None) is NULL_OBS
        assert resolve(False) is NULL_OBS
        enabled = resolve(True)
        assert isinstance(enabled, Observability) and enabled.enabled
        assert resolve(enabled) is enabled

    def test_null_obs_is_fully_inert(self):
        obs = NullObservability()
        assert not obs.enabled
        obs.inc("x")
        obs.gauge("x", 1.0)
        obs.observe("x", 1.0)
        obs.event("x")
        # Unguarded on purpose: the point is that the null sink absorbs
        # even an allocating call.
        obs.add_snapshot({"time": 0.0})  # crowdlint: disable=OBS001
        assert obs.span("x") is NULL_SPAN
        assert obs.snapshots == []
        assert NULL_OBS.snapshots == []  # the shared instance too

    def test_clock_binding_stamps_gauges_and_spans(self):
        obs = Observability()
        clock = {"now": 5.0}
        obs.bind_clock(lambda: clock["now"])
        obs.gauge("g", 1.0)
        obs.event("e")
        assert obs.now == 5.0
        assert obs.metrics.to_dict()["gauges"]["g"]["time"] == 5.0
        assert obs.tracer.records()[0]["start"] == 5.0

    def test_exports_are_canonical_json(self):
        obs = Observability()
        obs.inc("z")
        obs.inc("a")
        text = obs.metrics_json()
        assert text == dump_json(obs.export())
        assert text.index('"a"') < text.index('"z"')
        assert obs.export()["schema_version"] == 1
        assert obs.export_trace()["schema_version"] == 1

    def test_write_files(self, tmp_path):
        obs = Observability()
        obs.inc("n")
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        obs.write_metrics(metrics_path)
        obs.write_trace(trace_path)
        assert metrics_path.read_text() == obs.metrics_json() + "\n"
        assert trace_path.read_text() == obs.trace_json() + "\n"


# -- snapshot sampling ------------------------------------------------


class TestSnapshotSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            SnapshotSampler(Observability(), Simulator(), interval=0)

    def test_samples_are_deep_copies(self):
        obs = Observability()
        sim = Simulator()
        live = {"totals": {"w1": 1.0}}
        sampler = SnapshotSampler(obs, sim, interval=1.0)
        sampler.add_source("payout", lambda: live["totals"])
        sampler.sample_now()
        live["totals"]["w1"] = 99.0
        assert obs.snapshots[0]["payout"] == {"w1": 1.0}
        # ... and mutating the snapshot cannot touch the live dict.
        obs.snapshots[0]["payout"]["w1"] = -1.0
        assert live["totals"]["w1"] == 99.0

    def test_periodic_ticks_stop_when_workload_drains(self):
        obs = Observability()
        sim = Simulator(obs=obs)
        obs.bind_clock(lambda: sim.now)
        fired = []
        for at in (1.0, 12.0):
            sim.schedule(at, lambda at=at: fired.append(at))
        sampler = SnapshotSampler(obs, sim, interval=5.0)
        sampler.add_source("fired", lambda: len(fired))
        sampler.start()
        sim.run()  # must terminate: the sampler re-arms only while busy
        assert fired == [1.0, 12.0]
        times = [row["time"] for row in obs.snapshots]
        assert times == [0.0, 5.0, 10.0, 15.0]
        assert obs.snapshots[-1]["fired"] == 2


# -- end-to-end determinism and isolation -----------------------------


def _small_run(sanitize: bool = False):
    from repro.core.scoring import ThresholdScoring
    from repro.experiments.harness import make_policy, resolve_domain
    from repro.session import CollectionSession, WorkerSpec

    config = ExperimentConfig(seed=42, num_workers=3, target_rows=5)
    schema, _, truth_band = resolve_domain(config)
    profiles = config.resolved_profiles()
    session = CollectionSession(
        seed=config.seed,
        schema=schema,
        scoring=ThresholdScoring(config.min_votes),
        target_rows=config.target_rows,
        obs=True,
        sanitize=sanitize,
        snapshot_interval=30.0,
    )
    session.attach_estimator(config.budget)
    specs = [
        WorkerSpec(
            worker_id=f"worker-{index}",
            policy=lambda wid, i=index: make_policy(
                "diligent", truth_band, profiles[i], session.streams, wid
            ),
            profile=profiles[index],
            vote_cap=config.vote_cap,
        )
        for index in range(config.num_workers)
    ]
    session.recruit(specs, mean_interarrival=config.mean_interarrival)
    session.run(until=config.max_sim_time)
    return session


@pytest.mark.slow
def test_same_seed_runs_export_byte_identical_telemetry():
    first = _small_run()
    second = _small_run()
    assert first.obs.metrics_json() == second.obs.metrics_json()
    assert first.obs.trace_json() == second.obs.trace_json()


@pytest.mark.slow
def test_experiment_obs_handle_and_disabled_default():
    config = ExperimentConfig(seed=42, num_workers=3, target_rows=5)
    plain = CrowdFillExperiment(config).run()
    assert not plain.obs.enabled  # off by default, shared no-op
    observed = CrowdFillExperiment(config, obs=True).run()
    assert observed.obs.enabled
    # Observability must not perturb the collection itself.
    assert observed.messages_sent == plain.messages_sent
    assert observed.final_values == plain.final_values
    metrics = observed.obs.metrics
    assert metrics.counter_value("net.messages_sent") == plain.messages_sent
    assert metrics.counter_value("server.messages_applied") > 0
    assert metrics.counter_value("sim.events_fired") > 0
    assert observed.obs.snapshots  # periodic sampling ran
    trace = observed.obs.export_trace()
    assert trace["recorded"] > 0


@pytest.mark.slow
def test_snapshots_never_alias_live_state_under_sanitizer():
    session = _small_run(sanitize=True)
    backend = session.backend
    assert backend is not None and backend.completed
    snapshots = session.obs.snapshots
    assert snapshots
    final_before = [dict(row.value) for row in backend.final_rows()]
    # Corrupting every recorded snapshot must leave the live system
    # (replica tables, estimator, ledger) untouched.
    for row in snapshots:
        for key in list(row):
            row[key] = "poisoned"
    assert [dict(row.value) for row in backend.final_rows()] == final_before
    assert session.estimator is not None
    assert session.estimator.estimated_totals()  # still intact floats
    for amount in session.estimator.estimated_totals().values():
        assert isinstance(amount, float)
