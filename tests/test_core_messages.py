"""Unit tests for wire messages and trace records."""

import pytest

from repro.core import (
    CandidateTable,
    DownvoteMessage,
    InsertMessage,
    ReplaceMessage,
    RowValue,
    ThresholdScoring,
    TraceRecord,
    UpvoteMessage,
)
from repro.core.messages import (
    UndoDownvoteMessage,
    UndoUpvoteMessage,
    message_from_dict,
)
from repro.core.schema import soccer_player_schema


def make_table():
    return CandidateTable(soccer_player_schema(), ThresholdScoring(2))


def test_insert_message_apply():
    table = make_table()
    InsertMessage(row_id="r1").apply(table)
    assert "r1" in table


def test_replace_message_apply():
    table = make_table()
    table.apply_insert("r1")
    message = ReplaceMessage(
        old_id="r1",
        new_id="r2",
        value=RowValue({"name": "Messi"}),
        column="name",
        filled_value="Messi",
    )
    message.apply(table)
    assert "r2" in table and "r1" not in table


def test_vote_messages_apply():
    table = make_table()
    value = RowValue({"name": "X"})
    table.apply_replace("a", "r1", value)
    UpvoteMessage(value=value).apply(table)
    DownvoteMessage(value=value).apply(table)
    row = table.row("r1")
    assert (row.upvotes, row.downvotes) == (1, 1)


def test_undo_messages_apply():
    table = make_table()
    value = RowValue({"name": "X"})
    table.apply_replace("a", "r1", value)
    UpvoteMessage(value=value).apply(table)
    DownvoteMessage(value=value).apply(table)
    UndoUpvoteMessage(value=value).apply(table)
    UndoDownvoteMessage(value=value).apply(table)
    row = table.row("r1")
    assert (row.upvotes, row.downvotes) == (0, 0)


@pytest.mark.parametrize(
    "message",
    [
        InsertMessage(row_id="r1"),
        ReplaceMessage(
            old_id="r1",
            new_id="r2",
            value=RowValue({"name": "Messi", "caps": 83}),
            column="caps",
            filled_value=83,
        ),
        UpvoteMessage(value=RowValue({"name": "X"})),
        UpvoteMessage(value=RowValue({"name": "X"}), auto=True),
        DownvoteMessage(value=RowValue({"name": "X"})),
        UndoUpvoteMessage(value=RowValue({"name": "X"})),
        UndoDownvoteMessage(value=RowValue({"name": "X"})),
    ],
)
def test_message_dict_roundtrip(message):
    assert message_from_dict(message.to_dict()) == message


def test_message_from_dict_unknown_type():
    with pytest.raises(ValueError):
        message_from_dict({"type": "explode"})


def test_trace_record_to_dict():
    record = TraceRecord(
        seq=3,
        timestamp=1.5,
        worker_id="w1",
        message=InsertMessage(row_id="r1"),
    )
    data = record.to_dict()
    assert data["seq"] == 3
    assert data["worker_id"] == "w1"
    assert data["message"]["type"] == "insert"


def test_messages_are_frozen():
    message = InsertMessage(row_id="r1")
    with pytest.raises(AttributeError):
        message.row_id = "r2"
