"""Unit tests for the worker client: actions, vote policies, extensions."""

import random

import pytest

from repro.client import VotePolicyError, WorkerClient
from repro.constraints import Template
from repro.core import OperationError, ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)
FULL = {
    "name": "Messi", "nationality": "Argentina",
    "position": "FW", "caps": 83, "goals": 37,
}


@pytest.fixture
def system():
    sim = Simulator()
    streams = RngStreams(0)
    network = Network(sim, default_latency=ConstantLatency(0.05),
                      streams=streams)
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, Template.cardinality(3)
    )
    clients = []
    for i in range(2):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=streams, vote_cap=4,
                              allow_modify=True)
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()
    return sim, backend, clients


def complete_row(client, row_id, values=FULL):
    for column, value in values.items():
        row_id = client.fill(row_id, column, value)
    return row_id


def test_fill_returns_new_row_id(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    new_id = alice.fill(row_id, "name", "Messi")
    assert new_id != row_id
    assert dict(alice.row(new_id).value) == {"name": "Messi"}


def test_completing_fill_auto_upvotes(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    final_id = complete_row(alice, row_id)
    assert alice.row(final_id).upvotes == 1
    assert alice.votes_cast() == 1
    sim.run()
    assert backend.replica.table.row(final_id).upvotes == 1


def test_auto_upvote_not_doubled_for_own_vote(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    final_id = complete_row(alice, row_id)
    with pytest.raises(VotePolicyError):
        alice.upvote(final_id)  # already voted (indirectly)


def test_one_vote_per_row(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    final_id = complete_row(alice, row_id)
    sim.run()
    bob.upvote(final_id)
    with pytest.raises(VotePolicyError):
        bob.downvote(final_id)


def test_one_upvote_per_primary_key(system):
    sim, backend, (alice, bob) = system
    ids = alice.replica.table.row_ids()
    first = complete_row(alice, ids[0])
    second = complete_row(alice, ids[1], {**FULL, "position": "MF"})
    sim.run()
    bob.upvote(first)
    assert not bob.can_upvote(second)
    with pytest.raises(VotePolicyError):
        bob.upvote(second)
    # Downvoting a different row with the same key is still allowed.
    bob.downvote(second)


def test_vote_cap_enforced(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    partial = alice.fill(row_id, "name", "X")
    sim.run()
    # Cap is 4: simulate three downvotes arriving from elsewhere.
    row = bob.replica.table.row(partial)
    row.downvotes = 4
    assert not bob.can_vote(partial)
    with pytest.raises(VotePolicyError):
        bob.downvote(partial)


def test_cannot_vote_empty_row(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    assert not alice.can_vote(row_id)


def test_visible_rows_order_differs_between_clients(system):
    sim, backend, clients = system
    # With 3 rows a same-order collision is possible but the seeds used
    # here produce different permutations.
    orders = [
        [row.row_id for row in client.visible_rows()] for client in clients
    ]
    assert sorted(orders[0]) == sorted(orders[1])
    assert orders[0] != orders[1]


def test_visible_order_stable_for_existing_rows(system):
    sim, backend, (alice, bob) = system
    before = [row.row_id for row in alice.visible_rows()]
    assert [row.row_id for row in alice.visible_rows()] == before


def test_resolve_row_follows_replacements(system):
    sim, backend, (alice, bob) = system
    row_id = bob.replica.table.row_ids()[0]
    new_id = alice.fill(alice.replica.table.row_ids()[0], "name", "X")
    sim.run()
    # bob's original reference resolves to the replacement.
    original = row_id if row_id in alice.replica.table else row_id
    assert bob.resolve_row(new_id) == new_id
    replaced_id = alice.replica.table.row_ids()
    # After alice's fill, the old id resolves to new for bob as well.
    assert bob.resolve_row(row_id) in bob.replica.table or bob.resolve_row(
        row_id
    ) == row_id


def test_resolve_row_after_remote_replace(system):
    sim, backend, (alice, bob) = system
    shared = alice.replica.table.row_ids()[0]
    new_id = alice.fill(shared, "name", "X")
    sim.run()
    assert bob.resolve_row(shared) == new_id


def test_stale_fill_raises_operation_error(system):
    sim, backend, (alice, bob) = system
    shared = alice.replica.table.row_ids()[0]
    alice.fill(shared, "name", "X")
    sim.run()
    with pytest.raises(OperationError):
        bob.fill(shared, "nationality", "Y")  # stale id, unresolved


def test_modify_action_translates_to_downvote_insert_fill(system):
    """Bob corrects Alice's row: downvote + fresh row + fills."""
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    final_id = complete_row(alice, row_id)
    sim.run()
    corrected = bob.modify(final_id, "caps", 84)
    sim.run()
    assert dict(bob.row(corrected).value)["caps"] == 84
    assert backend.replica.table.row(final_id).downvotes == 1
    assert bob.snapshot() == backend.replica.snapshot()


def test_modify_own_voted_row_skips_downvote(system):
    """A worker who already (auto-)voted a row cannot vote it again;
    their modify still produces the corrected row."""
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    final_id = complete_row(alice, row_id)
    sim.run()
    corrected = alice.modify(final_id, "caps", 84)
    sim.run()
    assert dict(alice.row(corrected).value)["caps"] == 84
    assert backend.replica.table.row(final_id).downvotes == 0
    assert alice.snapshot() == backend.replica.snapshot()


def test_modify_requires_enabled_flag():
    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, Template.cardinality(1)
    )
    client = WorkerClient("solo", schema, SCORING, network)
    client.bootstrap(backend.attach_client("solo"))
    backend.start()
    sim.run()
    row_id = client.replica.table.row_ids()[0]
    new_id = client.fill(row_id, "caps", 83)
    with pytest.raises(OperationError):
        client.modify(new_id, "caps", 84)


def test_modify_requires_filled_column(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    new_id = alice.fill(row_id, "caps", 83)
    with pytest.raises(OperationError):
        alice.modify(new_id, "goals", 10)


def test_undo_vote_roundtrip(system):
    sim, backend, (alice, bob) = system
    row_id = alice.replica.table.row_ids()[0]
    final_id = complete_row(alice, row_id)
    sim.run()
    bob.upvote(final_id)
    sim.run()
    assert backend.replica.table.row(final_id).upvotes == 2
    bob.undo_last_vote()
    sim.run()
    assert backend.replica.table.row(final_id).upvotes == 1
    assert bob.snapshot() == backend.replica.snapshot()
    # The worker may vote on the row again after the undo.
    bob.downvote(final_id)


def test_undo_without_votes_raises(system):
    sim, backend, (alice, bob) = system
    with pytest.raises(OperationError):
        bob.undo_last_vote()


def test_listener_invoked_on_remote_messages(system):
    sim, backend, (alice, bob) = system
    seen = []
    bob.add_listener(seen.append)
    alice.fill(alice.replica.table.row_ids()[0], "name", "X")
    sim.run()
    assert seen
