"""Unit tests for probable-row classification (section 4.1)."""

import pytest

from repro.constraints.probable import (
    hypothetical_row_probable,
    is_probable,
    probable_rows,
)
from repro.core import CandidateTable, RowValue, ThresholdScoring
from repro.core.schema import soccer_player_schema


@pytest.fixture
def table():
    return CandidateTable(soccer_player_schema(), ThresholdScoring(2))


def full(name, nationality, position="FW", caps=80, goals=10):
    return RowValue(
        {
            "name": name,
            "nationality": nationality,
            "position": position,
            "caps": caps,
            "goals": goals,
        }
    )


def ids(rows):
    return {row.row_id for row in rows}


def test_condition1_incomplete_key_zero_score(table):
    table.load_row("r1", RowValue(), 0, 0)
    table.load_row("r2", RowValue({"position": "FW"}), 0, 0)
    assert ids(probable_rows(table)) == {"r1", "r2"}


def test_condition1_fails_with_negative_score(table):
    table.load_row("r1", RowValue({"position": "FW"}), 0, 2)
    assert probable_rows(table) == []


def test_condition2_complete_key_zero_score_no_positive_sibling(table):
    table.load_row("r1", RowValue({"name": "X", "nationality": "Y"}), 0, 0)
    assert ids(probable_rows(table)) == {"r1"}


def test_condition2_blocked_by_positive_sibling(table):
    table.load_row("r1", RowValue({"name": "X", "nationality": "Y"}), 0, 0)
    table.load_row("r2", full("X", "Y"), 2, 0)
    assert ids(probable_rows(table)) == {"r2"}


def test_condition3_best_complete_row_per_key(table):
    table.load_row("r1", full("X", "Y", "FW"), 2, 0)  # score 2
    table.load_row("r2", full("X", "Y", "MF"), 3, 0)  # score 3 wins
    assert ids(probable_rows(table)) == {"r2"}


def test_condition3_tie_broken_by_smallest_id(table):
    table.load_row("r2", full("X", "Y", "MF"), 2, 0)
    table.load_row("r1", full("X", "Y", "FW"), 2, 0)
    assert ids(probable_rows(table)) == {"r1"}


def test_complete_row_negative_score_not_probable(table):
    table.load_row("r1", full("X", "Y"), 0, 2)
    assert probable_rows(table) == []


def test_paper_section_43_initial_probable_set(table):
    """The candidate table of section 4.3: all four rows are probable."""
    table.load_row("1", RowValue({"name": "Neymar", "nationality": "Brazil",
                                  "position": "FW"}), 0, 0)
    table.load_row("2", RowValue({"name": "Ronaldinho",
                                  "nationality": "Brazil",
                                  "position": "FW"}), 0, 1)
    table.load_row("3", RowValue({"nationality": "Spain",
                                  "position": "FW"}), 0, 0)
    table.load_row("4", RowValue({"name": "Messi", "position": "FW"}), 0, 0)
    assert ids(probable_rows(table)) == {"1", "2", "3", "4"}
    # One more downvote on row 2 drops its score to -2: no longer probable.
    table.row("2").downvotes += 1
    assert ids(probable_rows(table)) == {"1", "3", "4"}


def test_is_probable_lookup(table):
    table.load_row("r1", RowValue(), 0, 0)
    assert is_probable(table, "r1")
    assert not is_probable(table, "ghost")


def test_hypothetical_empty_value_probable(table):
    assert hypothetical_row_probable(table, RowValue())


def test_hypothetical_downvoted_value_not_probable(table):
    value = RowValue({"nationality": "Brazil"})
    table.apply_downvote(value)
    table.apply_downvote(value)
    assert not hypothetical_row_probable(table, value)


def test_hypothetical_complete_key_with_positive_sibling(table):
    table.load_row("r1", full("X", "Y"), 2, 0)
    value = RowValue({"name": "X", "nationality": "Y"})
    assert not hypothetical_row_probable(table, value)


def test_hypothetical_complete_value_inheriting_upvotes(table):
    """A re-inserted complete value picks up UH: probable only if it
    would beat every incumbent with its key."""
    value = full("X", "Y")
    table.apply_upvote(value)
    table.apply_upvote(value)  # UH[value] = 2 -> would score 2
    assert hypothetical_row_probable(table, value)
    table.load_row("r1", full("X", "Y", "MF"), 3, 0)  # incumbent scores 3
    assert not hypothetical_row_probable(table, value)


def test_hypothetical_fresh_key_zero_score(table):
    assert hypothetical_row_probable(
        table, RowValue({"name": "New", "nationality": "Z"})
    )
