"""Batched application and columnar votes are invisible optimizations.

Three layers of evidence, each against an independent oracle:

- ``CandidateTable.apply_batch`` over a random message stream must be
  indistinguishable — state snapshots, vote histories, probable/final
  views, epoch counters, and probable-journal deltas — from applying
  the same messages one at a time.
- ``VoteColumns`` (dense arrays over interned value ids) must tally
  exactly like the dict-of-dicts bookkeeping it replaced, including the
  subset-sum that drives downvote inheritance (Lemma 3's d(r)).
- A ``BackendServer`` with ``max_batch=64`` must emit the same trace
  and broadcast stream as one with ``max_batch=1`` fed the identical
  message sequence.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import CandidateTable, RowValue, ThresholdScoring
from repro.core.intern import ValueInterner
from repro.core.messages import (
    DownvoteMessage,
    ReplaceMessage,
    UndoDownvoteMessage,
    UndoUpvoteMessage,
    UpvoteMessage,
)
from repro.core.schema import Column, DataType, Schema, soccer_player_schema
from repro.core.votes import VoteColumns
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator

SCHEMA = Schema(
    name="P",
    columns=(Column("k", DataType.INT), Column("v", DataType.INT)),
    primary_key=("k",),
)
SCORING = ThresholdScoring(2)

# -- strategies ----------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["replace", "upvote", "downvote", "undo_upvote", "undo_downvote"]
        ),
        st.integers(0, 7),  # row pick (mod current size)
        st.integers(0, 2),  # k
        st.integers(0, 2),  # v
    ),
    max_size=60,
)

batch_sizes = st.integers(1, 8)


def _build_messages(sequence):
    """Turn an abstract op list into a concrete, always-valid message
    stream by resolving ids and undo preconditions against a scratch
    table applied sequentially (the same order both tables replay)."""
    scratch = CandidateTable(SCHEMA, SCORING)
    messages = []
    counter = 0
    for kind, pick, k_val, v_val in sequence:
        value = RowValue({"k": k_val, "v": v_val})
        partial = RowValue({"k": k_val}) if pick % 2 else value
        if kind == "replace":
            counter += 1
            row_ids = scratch.row_ids()
            old = row_ids[pick % len(row_ids)] if row_ids else "ghost"
            old_value = (
                scratch.row(old).value if old in scratch else RowValue()
            )
            missing = old_value.missing_columns(("k", "v"))
            if not missing:
                continue
            column = missing[0]
            filled = k_val if column == "k" else v_val
            message = ReplaceMessage(
                old_id=old,
                new_id=f"r{counter}",
                value=old_value.with_value(column, filled),
                column=column,
                filled_value=filled,
            )
        elif kind == "upvote":
            message = UpvoteMessage(value=value)
        elif kind == "downvote":
            message = DownvoteMessage(value=partial)
        elif kind == "undo_upvote":
            if not scratch.upvote_history.get(value, 0):
                continue
            message = UndoUpvoteMessage(value=value)
        else:
            if not scratch.downvote_history.get(partial, 0):
                continue
            message = UndoDownvoteMessage(value=partial)
        message.apply(scratch)
        messages.append(message)
    return messages


def _observe(table):
    """Everything a consumer can see, as one comparable tuple."""
    return (
        table.snapshot(),
        table.history_snapshot(),
        sorted(row.row_id for row in table.probable_rows()),
        [(row.row_id, dict(row.value)) for row in table.final_rows()],
        table.probable_epoch,
        table.final_epoch,
    )


def _drain_ids(table, token):
    added, removed, full = table.drain_probable_delta(token)
    return [row.row_id for row in added], list(removed), full


def _assert_batch_equivalent(sequence, batch):
    messages = _build_messages(sequence)
    sequential = CandidateTable(SCHEMA, SCORING)
    batched = CandidateTable(SCHEMA, SCORING)
    seq_token = sequential.register_probable_consumer()
    bat_token = batched.register_probable_consumer()
    assert _drain_ids(sequential, seq_token) == _drain_ids(
        batched, bat_token
    )  # both start with a full resync

    remaining = list(messages)
    while remaining:
        window = remaining[:batch]
        applied = batched.apply_batch(window)
        assert 1 <= applied <= len(window)
        # Replay exactly the applied prefix one message at a time,
        # refreshing (via a view query) after each — the cadence
        # apply_batch promises to be indistinguishable from.
        seq_added, seq_removed = [], []
        for message in remaining[:applied]:
            message.apply(sequential)
            sequential.probable_rows()
            added, removed, full = _drain_ids(sequential, seq_token)
            assert not full
            seq_added.extend(added)
            seq_removed.extend(removed)
        bat_added, bat_removed, bat_full = _drain_ids(batched, bat_token)
        assert not bat_full
        # At most the window's last message moved membership, so the
        # concatenated per-message deltas equal the window's delta.
        assert (seq_added, seq_removed) == (bat_added, bat_removed)
        assert _observe(sequential) == _observe(batched)
        remaining = remaining[applied:]

    assert _observe(sequential) == _observe(batched)
    sequential.check_vote_invariants()
    batched.check_vote_invariants()


@settings(max_examples=60, deadline=None)
@given(ops, batch_sizes)
def test_apply_batch_matches_sequential_application(sequence, batch):
    _assert_batch_equivalent(sequence, batch)


@pytest.mark.slow
@settings(max_examples=300, deadline=None)
@given(ops, batch_sizes)
def test_apply_batch_matches_sequential_application_heavy(sequence, batch):
    _assert_batch_equivalent(sequence, batch)


@settings(max_examples=40, deadline=None)
@given(ops)
def test_apply_batch_full_stream_no_stops(sequence):
    """Without stop_on_view_change, one call applies everything and the
    terminal state still matches the sequential replay."""
    messages = _build_messages(sequence)
    sequential = CandidateTable(SCHEMA, SCORING)
    for message in messages:
        message.apply(sequential)
    batched = CandidateTable(SCHEMA, SCORING)
    remaining = list(messages)
    while remaining:
        applied = batched.apply_batch(remaining, stop_on_view_change=False)
        assert applied == len(remaining)
        remaining = remaining[applied:]
    assert sequential.snapshot() == batched.snapshot()
    assert sequential.history_snapshot() == batched.history_snapshot()
    assert sorted(r.row_id for r in sequential.probable_rows()) == sorted(
        r.row_id for r in batched.probable_rows()
    )
    assert [r.value for r in sequential.final_rows()] == [
        r.value for r in batched.final_rows()
    ]


# -- VoteColumns vs the dict-of-dicts oracle ------------------------------

vote_values = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.integers(0, 2),
    max_size=3,
).map(RowValue)

vote_ops = st.lists(
    st.tuples(
        st.sampled_from(["up", "down", "undo_up", "undo_down"]),
        vote_values,
    ),
    max_size=50,
)


@settings(max_examples=100, deadline=None)
@given(vote_ops)
def test_vote_columns_match_dict_oracle(sequence):
    interner = ValueInterner()
    votes = VoteColumns(interner)
    oracle_up: dict[RowValue, int] = {}
    oracle_down: dict[RowValue, int] = {}
    for kind, value in sequence:
        vid = interner.intern(value)
        if kind == "up":
            votes.up_add(vid)
            oracle_up[value] = oracle_up.get(value, 0) + 1
        elif kind == "down":
            votes.down_add(vid)
            oracle_down[value] = oracle_down.get(value, 0) + 1
        elif kind == "undo_up":
            if not oracle_up.get(value, 0):
                continue
            votes.up_add(vid, -1)
            oracle_up[value] -= 1
        else:
            if not oracle_down.get(value, 0):
                continue
            votes.down_add(vid, -1)
            oracle_down[value] -= 1
    for value, count in oracle_up.items():
        assert votes.up_count(interner.intern(value)) == count
    for value, count in oracle_down.items():
        assert votes.down_count(interner.intern(value)) == count
    # Lemma 3's d(r): the postings-driven subset-sum equals brute-force
    # subsumption over the whole downvote history.
    queries = {value for _, value in sequence} | {RowValue()}
    for query in queries:
        brute = sum(
            count
            for value, count in oracle_down.items()
            if query.subsumes(value)
        )
        assert votes.subset_sum(interner.intern(query)) == brute


@settings(max_examples=60, deadline=None)
@given(vote_ops)
def test_history_views_equal_oracle_mappings(sequence):
    """The MutableMapping facade over VoteColumns behaves like the old
    dicts: first-write iteration order, zero entries retained."""
    table = CandidateTable(SCHEMA, SCORING)
    oracle_up: dict[RowValue, int] = {}
    oracle_down: dict[RowValue, int] = {}
    for kind, value in sequence:
        if kind == "up":
            table.upvote_history[value] = (
                table.upvote_history.get(value, 0) + 1
            )
            oracle_up[value] = oracle_up.get(value, 0) + 1
        elif kind == "down":
            table.downvote_history[value] = (
                table.downvote_history.get(value, 0) + 1
            )
            oracle_down[value] = oracle_down.get(value, 0) + 1
        elif kind == "undo_up":
            if not oracle_up.get(value, 0):
                continue
            table.upvote_history[value] -= 1
            oracle_up[value] -= 1
        else:
            if not oracle_down.get(value, 0):
                continue
            table.downvote_history[value] -= 1
            oracle_down[value] -= 1
    assert dict(table.upvote_history) == oracle_up
    assert dict(table.downvote_history) == oracle_down
    assert list(table.upvote_history) == list(oracle_up)
    assert list(table.downvote_history) == list(oracle_down)


# -- server level: max_batch=1 vs max_batch=64 ----------------------------


def _soccer_stream(n_rows=30, votes=200):
    """A seeded replace-then-vote stream (same shape as the benches)."""
    rng = random.Random(11)
    messages = [
        ReplaceMessage(
            old_id=f"old{i}",
            new_id=f"r{i}",
            value=RowValue({
                "name": f"Player {i}",
                "nationality": f"Country {i % 5}",
                "position": ["GK", "DF", "MF", "FW"][i % 4],
                "caps": 80 + i % 20,
                "goals": i % 40,
            }),
            column="name",
            filled_value=f"Player {i}",
        )
        for i in range(n_rows)
    ]
    up_counts: dict[int, int] = {}
    for _ in range(votes):
        i = rng.randrange(n_rows)
        value = RowValue({
            "name": f"Player {i}",
            "nationality": f"Country {i % 5}",
            "position": ["GK", "DF", "MF", "FW"][i % 4],
            "caps": 80 + i % 20,
            "goals": i % 40,
        })
        roll = rng.random()
        if roll < 0.45:
            messages.append(UpvoteMessage(value=value))
            up_counts[i] = up_counts.get(i, 0) + 1
        elif roll < 0.9:
            messages.append(
                DownvoteMessage(value=RowValue({"name": f"Player {i}"}))
            )
        elif up_counts.get(i, 0):
            messages.append(UndoUpvoteMessage(value=value))
            up_counts[i] -= 1
        else:
            messages.append(UpvoteMessage(value=value))
            up_counts[i] = up_counts.get(i, 0) + 1
    return messages


def test_server_batched_drain_matches_per_message_drain():
    """max_batch=64 and max_batch=1 servers fed the same stream agree on
    the trace, the master replica, and the serialized broadcast bytes."""
    outcomes = []
    for max_batch in (1, 64):
        sim = Simulator()
        network = Network(
            sim,
            default_latency=ConstantLatency(0.01),
            streams=RngStreams(0),
        )
        template = Template.from_values(
            [{"name": f"Target {k}"} for k in range(3)]
        )
        schema = soccer_player_schema()
        backend = BackendServer(
            sim, network, schema, SCORING, template, max_batch=max_batch
        )
        observer = WorkerClient(
            "observer", schema, SCORING, network, streams=RngStreams(1)
        )
        observer.bootstrap(backend.attach_client("observer"))
        seen = []
        observer.add_listener(seen.append)
        backend.start()
        sim.run()
        backend.ingest("w1", _soccer_stream())
        sim.run()
        wire = json.dumps(
            [message.to_dict() for message in seen], sort_keys=True
        )
        outcomes.append(
            (
                [
                    (rec.seq, rec.timestamp, rec.worker_id, rec.message)
                    for rec in backend.trace
                ],
                backend.replica.snapshot(),
                observer.snapshot(),
                wire,
                [dict(row.value) for row in backend.final_rows()],
            )
        )
    assert outcomes[0] == outcomes[1]
