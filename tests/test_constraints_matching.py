"""Unit and property tests for incremental bipartite matching.

The property test checks our augmenting-path implementation against
networkx's Hopcroft-Karp as an oracle.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import IncrementalMatching, maximum_matching_size


def build(lefts, rights, edges):
    matching = IncrementalMatching(lefts)
    for right in rights:
        matching.add_right(right, ())
    for left, right in edges:
        matching.add_edge(left, right)
    return matching


def test_empty_matching():
    matching = IncrementalMatching()
    assert matching.size == 0
    assert matching.maximize() == 0


def test_single_edge():
    matching = build(["t"], ["p"], [("t", "p")])
    assert matching.maximize() == 1
    assert matching.matched_right("t") == "p"
    assert matching.matched_left("p") == "t"


def test_augmenting_path_flips_matching():
    """The classic: t1 matched to p1 must move so t2 (only p1) fits."""
    matching = build(
        ["t1", "t2"], ["p1", "p2"], [("t1", "p1"), ("t1", "p2"), ("t2", "p1")]
    )
    matching.augment("t1")
    assert matching.size == 1
    matching.augment("t2")
    assert matching.size == 2
    matching.verify()


def test_free_lefts():
    matching = build(["t1", "t2"], ["p1"], [("t1", "p1")])
    matching.maximize()
    assert matching.free_lefts() == ["t2"]


def test_remove_right_frees_its_left():
    matching = build(["t"], ["p"], [("t", "p")])
    matching.maximize()
    freed = matching.remove_right("p")
    assert freed == ["t"]
    assert matching.size == 0
    matching.verify()


def test_remove_unmatched_right_frees_nothing():
    matching = build(["t"], ["p", "q"], [("t", "p"), ("t", "q")])
    matching.maximize()
    unmatched = "q" if matching.matched_right("t") == "p" else "p"
    assert matching.remove_right(unmatched) == []
    assert matching.size == 1


def test_remove_left():
    matching = build(["t1", "t2"], ["p1"], [("t1", "p1")])
    matching.maximize()
    matching.remove_left("t1")
    assert matching.size == 0
    assert "t1" not in matching.left_nodes
    matching.verify()


def test_add_left_with_neighbors():
    matching = build(["t1"], ["p1", "p2"], [("t1", "p1")])
    matching.maximize()
    matching.add_left("t2", ["p1", "p2"])
    matching.maximize()
    assert matching.size == 2


def test_duplicate_nodes_rejected():
    matching = build(["t"], ["p"], [])
    with pytest.raises(ValueError):
        matching.add_left("t")
    with pytest.raises(ValueError):
        matching.add_right("p", ())


def test_edge_to_unknown_node_rejected():
    matching = build(["t"], ["p"], [])
    with pytest.raises(ValueError):
        matching.add_edge("t", "ghost")
    with pytest.raises(ValueError):
        matching.add_edge("ghost", "p")


def test_try_free_instead_success():
    """Both template rows need the same probable row; the shuffle hands
    it from t2 to t1, leaving t2 free for a fresh insert."""
    matching = build(
        ["t1", "t2"], ["p1"], [("t1", "p1"), ("t2", "p1")]
    )
    matching.augment("t2")
    assert matching.matched_right("t2") == "p1"
    assert not matching.augment("t1") or matching.size == 1
    assert matching.try_free_instead("t1", "t2")
    assert matching.matched_right("t1") == "p1"
    assert matching.matched_right("t2") is None
    matching.verify()


def test_try_free_instead_failure_restores_state():
    matching = build(["t1", "t2"], ["p2"], [("t2", "p2")])
    matching.maximize()
    before = matching.pairs()
    assert not matching.try_free_instead("t1", "t2")  # t1 has no edges
    assert matching.pairs() == before
    matching.verify()


def test_one_shot_maximum_matching_size():
    size = maximum_matching_size(
        ["a", "b", "c"],
        [1, 2],
        {"a": [1], "b": [1, 2], "c": [2]},
    )
    assert size == 2


left_ids = st.integers(min_value=0, max_value=7)
right_ids = st.integers(min_value=100, max_value=109)


@settings(max_examples=150, deadline=None)
@given(edges=st.sets(st.tuples(left_ids, right_ids), max_size=40))
def test_matching_size_matches_networkx_oracle(edges):
    lefts = sorted({left for left, _ in edges}) or [0]
    rights = sorted({right for _, right in edges})
    adjacency = {}
    for left, right in edges:
        adjacency.setdefault(left, []).append(right)

    ours = maximum_matching_size(lefts, rights, adjacency)

    graph = nx.Graph()
    graph.add_nodes_from(("L", left) for left in lefts)
    graph.add_nodes_from(("R", right) for right in rights)
    graph.add_edges_from(
        ((("L", left), ("R", right)) for left, right in edges)
    )
    oracle = len(
        nx.bipartite.maximum_matching(
            graph, top_nodes=[("L", left) for left in lefts]
        )
    ) // 2
    assert ours == oracle


@settings(max_examples=60, deadline=None)
@given(
    edges=st.sets(st.tuples(left_ids, right_ids), max_size=30),
    removals=st.lists(right_ids, max_size=10),
)
def test_incremental_removals_keep_matching_maximum(edges, removals):
    """After arbitrary right-node removals plus re-maximization, the
    matching size equals a from-scratch recomputation."""
    lefts = sorted({left for left, _ in edges}) or [0]
    rights = sorted({right for _, right in edges})
    matching = IncrementalMatching(lefts)
    adjacency = {}
    for left, right in edges:
        adjacency.setdefault(right, []).append(left)
    for right in rights:
        matching.add_right(right, adjacency.get(right, []))
    matching.maximize()

    alive = set(rights)
    for right in removals:
        matching.remove_right(right)
        alive.discard(right)
        matching.maximize()
        matching.verify()

    expected = maximum_matching_size(
        lefts,
        sorted(alive),
        {
            left: [r for l, r in edges if l == left and r in alive]
            for left in lefts
        },
    )
    assert matching.size == expected
