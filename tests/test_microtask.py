"""Unit tests for the microtask baseline: coordinator state machine and
worker answering."""

import random

import pytest

from repro.core import RowValue
from repro.core.schema import soccer_player_schema
from repro.datasets import GroundTruth, SoccerPlayerUniverse
from repro.microtask import (
    EnumerateTask,
    FillTask,
    MicrotaskAnswer,
    MicrotaskCoordinator,
    MicrotaskWorker,
    VerifyTask,
)
from repro.sim import Simulator
from repro.workers.profile import WorkerProfile

SCHEMA = soccer_player_schema()
ENTITY = {
    "name": "Messi", "nationality": "Argentina",
    "position": "FW", "caps": 83, "goals": 37,
}


def make_coordinator(target_rows=1, **kwargs):
    return MicrotaskCoordinator(Simulator(), SCHEMA, target_rows, **kwargs)


def take(coordinator, worker_id):
    task = coordinator.next_task(worker_id)
    assert task is not None, f"no task available for {worker_id}"
    return task


def answer(coordinator, task, worker_id, payload):
    coordinator.submit(
        MicrotaskAnswer(task_id=task.task_id, worker_id=worker_id,
                        payload=payload)
    )


def drive_to_verification(coordinator):
    """One slot: enumerate by w0, fills by w1."""
    task = take(coordinator, "w0")
    assert isinstance(task, EnumerateTask)
    answer(coordinator, task, "w0",
           RowValue({"name": "Messi", "nationality": "Argentina"}))
    for _ in range(3):  # position, caps, goals
        fill = take(coordinator, "w1")
        assert isinstance(fill, FillTask)
        answer(coordinator, fill, "w1", ENTITY[fill.column])


class TestCoordinator:
    def test_starts_with_one_enumerate_per_slot(self):
        coordinator = make_coordinator(target_rows=3)
        assert coordinator.stats.tasks_issued["enumerate"] == 3
        kinds = {take(coordinator, f"w{i}").kind for i in range(3)}
        assert kinds == {"enumerate"}

    def test_enumerate_answer_spawns_fill_tasks(self):
        coordinator = make_coordinator()
        task = take(coordinator, "w0")
        answer(coordinator, task, "w0",
               RowValue({"name": "Messi", "nationality": "Argentina"}))
        assert coordinator.stats.tasks_issued["fill"] == 3

    def test_duplicate_key_detected_and_redone(self):
        coordinator = make_coordinator(target_rows=2)
        first = take(coordinator, "w0")
        second = take(coordinator, "w1")
        key = RowValue({"name": "Messi", "nationality": "Argentina"})
        answer(coordinator, first, "w0", key)
        answer(coordinator, second, "w1", key)  # concurrent duplicate
        assert coordinator.stats.duplicates == 1
        assert coordinator.stats.tasks_issued["enumerate"] == 3

    def test_full_happy_path_commits_row(self):
        coordinator = make_coordinator()
        drive_to_verification(coordinator)
        assert coordinator.stats.tasks_issued["verify"] == 2
        for voter in ("w2", "w3"):
            verify = take(coordinator, voter)
            assert isinstance(verify, VerifyTask)
            answer(coordinator, verify, voter, True)
        assert coordinator.completed
        assert coordinator.final_rows() == [RowValue(ENTITY)]
        assert coordinator.stats.completion_time is not None

    def test_split_vote_asks_third_worker(self):
        coordinator = make_coordinator()
        drive_to_verification(coordinator)
        first = take(coordinator, "w2")
        answer(coordinator, first, "w2", True)
        second = take(coordinator, "w3")
        answer(coordinator, second, "w3", False)
        assert coordinator.stats.tasks_issued["verify"] == 3
        third = take(coordinator, "w4")
        answer(coordinator, third, "w4", True)
        assert coordinator.completed

    def test_rejected_row_refills_then_reenumerates(self):
        coordinator = make_coordinator()
        drive_to_verification(coordinator)
        for voter in ("w2", "w3"):
            verify = take(coordinator, voter)
            answer(coordinator, verify, voter, False)
        assert coordinator.stats.rejected_rows == 1
        # Retry keeps the key but reissues the non-key fills.
        assert coordinator.stats.tasks_issued["fill"] == 6
        for _ in range(3):
            fill = take(coordinator, "w1")
            answer(coordinator, fill, "w1", ENTITY[fill.column])
        for voter in ("w2", "w3"):
            verify = take(coordinator, voter)
            answer(coordinator, verify, voter, False)
        # Second rejection: give up on the key entirely.
        assert coordinator.stats.reenumerations == 1
        assert coordinator.stats.tasks_issued["enumerate"] == 2

    def test_enumerator_cannot_verify_own_row(self):
        coordinator = make_coordinator()
        drive_to_verification(coordinator)
        assert coordinator.next_task("w0") is None  # only verifies remain
        assert coordinator.next_task("w2") is not None

    def test_one_vote_per_worker_per_row(self):
        coordinator = make_coordinator()
        drive_to_verification(coordinator)
        verify = take(coordinator, "w2")
        answer(coordinator, verify, "w2", True)
        assert coordinator.next_task("w2") is None

    def test_skip_reopens_for_others(self):
        coordinator = make_coordinator()
        task = take(coordinator, "w0")
        answer(coordinator, task, "w0", None)  # skip
        assert coordinator.stats.skips == 1
        again = take(coordinator, "w1")
        assert again.task_id == task.task_id

    def test_reskip_allowed_when_nobody_else_wants_it(self):
        coordinator = make_coordinator()
        task = take(coordinator, "w0")
        answer(coordinator, task, "w0", None)
        again = take(coordinator, "w0")  # sole worker gets it back
        assert again.task_id == task.task_id

    def test_unanswerable_fill_expires_the_key(self):
        coordinator = make_coordinator(skip_limit=2)
        task = take(coordinator, "w0")
        answer(coordinator, task, "w0",
               RowValue({"name": "Nobody", "nationality": "Nowhere"}))
        # Everyone skips every fill for the fabricated key; once some
        # task accumulates skip_limit skips, the key expires.
        for i in range(1, 10):
            task = take(coordinator, f"w{i}")
            if isinstance(task, EnumerateTask):
                break
            answer(coordinator, task, f"w{i}", None)
        assert coordinator.stats.reenumerations == 1
        # All fill tasks for the dead key are gone; the replacement
        # enumerate excludes nothing new and is the only open task.
        assert isinstance(task, EnumerateTask)
        assert coordinator.next_task("w99") is None

    def test_wrong_assignee_rejected(self):
        coordinator = make_coordinator()
        task = take(coordinator, "w0")
        with pytest.raises(KeyError):
            answer(coordinator, task, "intruder",
                   RowValue({"name": "X", "nationality": "Y"}))

    def test_stale_fill_for_reenumerated_slot_ignored(self):
        coordinator = make_coordinator(skip_limit=1)
        task = take(coordinator, "w0")
        answer(coordinator, task, "w0",
               RowValue({"name": "Ghost", "nationality": "Nowhere"}))
        in_flight_fill = take(coordinator, "w1")
        other_fill = take(coordinator, "w2")
        answer(coordinator, other_fill, "w2", None)  # expires the key
        # w1's late answer for the dead key is dropped silently.
        answer(coordinator, in_flight_fill, "w1", "FW")
        slot = coordinator.slots[0]
        assert slot.key != ("Ghost", "Nowhere")


class TestMicrotaskWorker:
    def make_worker(self, knowledge_rows, coordinator=None, **profile_kwargs):
        sim = Simulator()
        coordinator = coordinator or MicrotaskCoordinator(sim, SCHEMA, 2)
        knowledge = GroundTruth(SCHEMA, knowledge_rows)
        profile = WorkerProfile(
            fill_accuracy=1.0, judgement_accuracy=1.0, pause_prob=0.0,
            **profile_kwargs,
        )
        worker = MicrotaskWorker(
            "w0", coordinator, knowledge, reference=knowledge,
            profile=profile, sim=sim, rng=random.Random(0),
        )
        return sim, coordinator, worker

    def test_enumerate_answer_respects_exclusions(self):
        entity = RowValue(ENTITY)
        _, coordinator, worker = self.make_worker([entity])
        task = EnumerateTask(
            task_id="t1",
            exclusions=frozenset({("Messi", "Argentina")}),
            slot=0,
        )
        assert worker._answer_enumerate(task) is None

    def test_fill_answers_known_entity(self):
        entity = RowValue(ENTITY)
        _, coordinator, worker = self.make_worker([entity])
        task = FillTask(
            task_id="t1", key=("Messi", "Argentina"),
            key_values=RowValue({"name": "Messi",
                                 "nationality": "Argentina"}),
            column="caps", slot=0,
        )
        assert worker._answer_fill(task) == 83

    def test_fill_skips_unknown_without_reference(self):
        entity = RowValue(ENTITY)
        _, coordinator, worker = self.make_worker([entity])
        worker.reference = None
        task = FillTask(
            task_id="t1", key=("Ghost", "Nowhere"),
            key_values=RowValue({"name": "Ghost", "nationality": "Nowhere"}),
            column="caps", slot=0,
        )
        assert worker._answer_fill(task) is None

    def test_verify_confident_no_for_fabricated_key(self):
        entity = RowValue(ENTITY)
        _, coordinator, worker = self.make_worker(
            [entity], suspect_unknown_prob=1.0
        )
        fake = RowValue({**ENTITY, "name": "Ghost"})
        task = VerifyTask(task_id="t1", value=fake, slot=0)
        assert worker._answer_verify(task) is False

    def test_verify_memoizes_verdict(self):
        entity = RowValue(ENTITY)
        _, coordinator, worker = self.make_worker([entity])
        task = VerifyTask(task_id="t1", value=entity, slot=0)
        first = worker._answer_verify(task)
        assert all(
            worker._answer_verify(task) == first for _ in range(5)
        )

    def test_end_to_end_small_collection(self):
        """Three workers drive a 3-row microtask collection to done."""
        sim = Simulator()
        universe = SoccerPlayerUniverse(seed=1, size=40, include_dob=False)
        truth = universe.ground_truth()
        coordinator = MicrotaskCoordinator(sim, SCHEMA, 3)
        for i in range(3):
            rng = random.Random(i)
            worker = MicrotaskWorker(
                f"w{i}", coordinator,
                truth.sample_known_subset(rng, 0.6),
                reference=truth,
                profile=WorkerProfile(fill_accuracy=1.0, pause_prob=0.0),
                sim=sim, rng=random.Random(100 + i),
                is_done=lambda: coordinator.completed,
            )
            worker.start()
        sim.run(until=3 * 3600)
        assert coordinator.completed
        final = coordinator.final_rows()
        assert len(final) == 3
        assert truth.accuracy_of(final) == 1.0
        keys = {row.key(SCHEMA.key_columns) for row in final}
        assert len(keys) == 3

    def test_double_start_rejected(self):
        entity = RowValue(ENTITY)
        sim, coordinator, worker = self.make_worker([entity])
        worker.start()
        with pytest.raises(RuntimeError):
            worker.start()


class TestMicrotaskWorkerLoop:
    def test_worker_pays_overhead_per_task(self):
        sim = Simulator()
        universe = SoccerPlayerUniverse(seed=2, size=30, include_dob=False)
        truth = universe.ground_truth()
        coordinator = MicrotaskCoordinator(sim, SCHEMA, 2)
        worker = MicrotaskWorker(
            "w0", coordinator, truth, reference=truth,
            profile=WorkerProfile(fill_accuracy=1.0, pause_prob=0.0),
            sim=sim, rng=random.Random(0),
            is_done=lambda: coordinator.completed,
        )
        worker.start()
        sim.run(until=300.0)
        assert worker.log.tasks_answered > 0
        assert worker.log.overhead_seconds > 0
        assert worker.log.work_seconds > 0
        # Each answered task paid between 4 and 12 seconds of overhead
        # (speed 1.0, no pauses).
        attempts = worker.log.tasks_answered + worker.log.tasks_skipped
        assert worker.log.overhead_seconds >= 4.0 * attempts * 0.9

    def test_per_kind_counters(self):
        sim = Simulator()
        universe = SoccerPlayerUniverse(seed=2, size=30, include_dob=False)
        truth = universe.ground_truth()
        coordinator = MicrotaskCoordinator(sim, SCHEMA, 2)
        workers = []
        for i in range(3):
            worker = MicrotaskWorker(
                f"w{i}", coordinator, truth, reference=truth,
                profile=WorkerProfile(fill_accuracy=1.0, pause_prob=0.0),
                sim=sim, rng=random.Random(10 + i),
                is_done=lambda: coordinator.completed,
            )
            workers.append(worker)
            worker.start()
        sim.run(until=3600.0)
        assert coordinator.completed
        totals = {"enumerate": 0, "fill": 0, "verify": 0}
        for worker in workers:
            for kind, count in worker.log.per_kind.items():
                totals[kind] += count
        assert totals["enumerate"] >= 2
        assert totals["fill"] >= 6  # 3 non-key columns x 2 rows, minimum
        assert totals["verify"] >= 4
