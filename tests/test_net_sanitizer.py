"""Tests for the replica-aliasing sanitizer (repro.net.sanitizer).

The acceptance bar: a deliberately aliased message — one mutated through
a retained reference after send, or mutated by its receiver — must be
caught, with the violation raised at (or attributed to) the offending
side.  Plus: fingerprints are hash-seed- and freeze-stable, frozen
payloads still deep-copy into mutable values for legitimate re-sends,
the env-var switch works, and a full client/server assembly converges
under the sanitizer with every message sealed.
"""

from __future__ import annotations

import copy
import dataclasses
import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import Column, DataType, Schema
from repro.core.scoring import ThresholdScoring
from repro.net import (
    AliasingViolation,
    ConstantLatency,
    Network,
    deep_freeze,
    fingerprint,
    sanitize_enabled_by_env,
)
from repro.net.sanitizer import FrozenDict, FrozenList, MessageSanitizer
from repro.server.backend import BackendServer
from repro.sim import RngStreams, Simulator
from repro.sim.rng import RngStreams


class Sink:
    def __init__(self):
        self.got = []

    def on_message(self, source, payload):
        self.got.append((source, payload))


def make_net(sanitize=True, latency=None):
    sim = Simulator()
    net = Network(
        sim,
        default_latency=latency or ConstantLatency(0.1),
        streams=RngStreams(0),
        sanitize=sanitize,
    )
    return sim, net


# -- fingerprint --------------------------------------------------------------


def test_fingerprint_ignores_mapping_and_set_order():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
    assert fingerprint({"x", "y", "z"}) == fingerprint({"z", "x", "y"})


def test_fingerprint_detects_structural_change():
    base = {"rows": [1, 2], "votes": {"u": 3}}
    changed = {"rows": [1, 2], "votes": {"u": 4}}
    assert fingerprint(base) != fingerprint(changed)
    assert fingerprint([1, 2]) != fingerprint((1, 2))  # list vs tuple


def test_fingerprint_stable_across_freeze_and_deepcopy():
    payload = {"k": [1, {"nested": {2, 3}}], "t": ("a", "b")}
    digest = fingerprint(payload)
    assert fingerprint(copy.deepcopy(payload)) == digest
    assert fingerprint(deep_freeze(copy.deepcopy(payload))) == digest


def test_fingerprint_of_plain_objects_is_address_free():
    class Box:
        def __init__(self, value):
            self.value = value

    a, b = Box(7), Box(7)
    assert fingerprint(a) == fingerprint(b)  # default repr would differ
    assert fingerprint(Box(7)) != fingerprint(Box(8))


def test_fingerprint_handles_cycles():
    loop = []
    loop.append(loop)
    assert isinstance(fingerprint(loop), str)


# -- deep freeze --------------------------------------------------------------


def test_deep_freeze_blocks_container_mutation():
    frozen = deep_freeze({"rows": [1, 2], "tags": {"x"}})
    assert isinstance(frozen, dict) and isinstance(frozen["rows"], list)
    assert frozen["tags"] == frozenset({"x"})
    with pytest.raises(AliasingViolation):
        frozen["new"] = 1
    with pytest.raises(AliasingViolation):
        frozen["rows"].append(3)
    with pytest.raises(AliasingViolation):
        frozen["rows"][0] = 99
    # Reads are untouched.
    assert frozen["rows"] == [1, 2] and len(frozen) == 2


def test_deep_freeze_reaches_dataclass_fields():
    @dataclasses.dataclass(frozen=True)
    class Msg:
        values: dict

    frozen = deep_freeze(Msg(values={"a": [1]}))
    with pytest.raises(AliasingViolation):
        frozen.values["a"].append(2)


def test_frozen_containers_deepcopy_to_mutable():
    """A delivered (frozen) payload a replica re-sends must deep-copy
    cleanly back into plain mutable containers."""
    frozen = deep_freeze({"rows": [1, 2]})
    thawed = copy.deepcopy(frozen)
    assert type(thawed) is dict and type(thawed["rows"]) is list
    thawed["rows"].append(3)  # does not raise
    assert not isinstance(thawed, FrozenDict)
    assert not isinstance(thawed["rows"], FrozenList)


# -- activation ---------------------------------------------------------------


def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_NET_SANITIZE", raising=False)
    _, net = make_net(sanitize=None)
    assert net.sanitizer is None
    assert not sanitize_enabled_by_env()


@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("yes", True),
    ("0", False), ("false", False), ("", False),
])
def test_env_var_activation(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_NET_SANITIZE", value)
    assert sanitize_enabled_by_env() is expected
    _, net = make_net(sanitize=None)
    assert (net.sanitizer is not None) is expected


# -- the acceptance criterion: aliased messages are caught --------------------


def test_sender_mutating_in_flight_message_is_caught():
    """The deliberate aliasing bug: the sender keeps a reference to a
    sent payload and mutates it while the message is on the wire."""
    sim, net = make_net()
    net.register("server", Sink())
    net.register("client", Sink())
    payload = {"op": "insert", "values": {"k": "x"}}
    net.send("server", "client", payload)
    payload["values"]["k"] = "CORRUPTED"  # aliased mutation, pre-delivery
    with pytest.raises(AliasingViolation, match="'server'.*in flight"):
        sim.run()
    assert net.sanitizer.violations_detected == 1


def test_receiver_mutating_delivered_payload_raises_at_site():
    sim, net = make_net()

    class Mutator:
        def on_message(self, source, payload):
            payload["values"]["k"] = "MINE"  # replica aliasing bug

    net.register("server", Sink())
    net.register("client", Mutator())
    net.send("server", "client", {"op": "insert", "values": {"k": "x"}})
    with pytest.raises(AliasingViolation, match="immutable values"):
        sim.run()


def test_receiver_attribute_mutation_caught_by_backstop():
    """Attribute rebinding on a plain object can't be intercepted by
    container freezing; the post-delivery re-fingerprint catches it."""

    class Note:
        def __init__(self, text):
            self.text = text

    class Mutator:
        def on_message(self, source, payload):
            payload.text = "rewritten"

    sim, net = make_net()
    net.register("server", Sink())
    net.register("client", Mutator())
    net.send("server", "client", Note("original"))
    with pytest.raises(AliasingViolation, match="'client' mutated"):
        sim.run()
    assert net.sanitizer.violations_detected == 1


def test_receiver_never_sees_senders_object():
    sim, net = make_net()
    sink = Sink()
    net.register("server", Sink())
    net.register("client", sink)
    payload = {"values": {"k": "x"}}
    net.send("server", "client", payload)
    sim.run()
    (_, delivered), = sink.got
    assert delivered == payload
    assert delivered is not payload
    assert delivered["values"] is not payload["values"]
    # Post-delivery mutation through the sender's reference no longer
    # reaches the receiver's copy (and the wire is empty, so no check
    # fires): the aliasing channel is severed.
    payload["values"]["k"] = "later"
    assert delivered["values"]["k"] == "x"


def test_clean_traffic_passes_and_counts_seals():
    sim, net = make_net()
    sink = Sink()
    net.register("a", Sink())
    net.register("b", sink)
    for i in range(10):
        net.send("a", "b", {"seq": i})
    sim.run()
    assert [p["seq"] for _, p in sink.got] == list(range(10))
    assert net.sanitizer.messages_sealed == 10
    assert net.sanitizer.violations_detected == 0


def test_sanitizer_unwraps_originals_on_drop():
    """FaultInjector requeues DroppedMessage.payload into client resend
    buffers — it must get the original object back, not a SealedMessage."""
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    net.register("b", Sink())
    payload = {"op": "fill"}
    net.send("a", "b", payload)
    dropped = net.drop_in_flight("b")
    assert [d.payload for d in dropped] == [payload]
    assert dropped[0].payload is payload


# -- central drop accounting --------------------------------------------------


def test_check_accounting_detects_corruption():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    net.register("b", Sink())
    net.send("a", "b", "x")
    net.check_accounting()
    net.stats.messages_sent += 1  # simulate an accounting bug
    with pytest.raises(AssertionError, match="drop-accounting invariant"):
        net.check_accounting()


def test_release_and_verify_direct():
    sanitizer = MessageSanitizer()
    sealed = sanitizer.seal("a", "b", {"v": 1})
    delivered = sanitizer.release(sealed)
    assert delivered == {"v": 1}
    sanitizer.verify_delivered(sealed)
    sealed.copy["v"] = 2  # bypass: mutate the retained copy directly
    with pytest.raises(AliasingViolation):
        sanitizer.verify_delivered(sealed)


# -- full assembly under the sanitizer ----------------------------------------


def test_full_stack_converges_with_sanitizer_enabled():
    """The production client/server assembly runs a busy schedule with
    every message sealed, frozen, and verified — and still converges."""
    schema = Schema(
        name="Mini",
        columns=(
            Column("k", DataType.STRING),
            Column("a", DataType.INT),
        ),
        primary_key=("k",),
    )
    scoring = ThresholdScoring(2)
    sim = Simulator()
    net = Network(
        sim,
        default_latency=ConstantLatency(0.05),
        streams=RngStreams(7),
        sanitize=True,
    )
    backend = BackendServer(
        sim, net, schema, scoring, Template.cardinality(2), oplog_capacity=64
    )
    streams = RngStreams(7)
    clients = {}
    for name in ("c0", "c1"):
        client = WorkerClient(
            name, schema, scoring, net, streams=streams
        )
        client.bootstrap(backend.attach_client(name))
        clients[name] = client
    backend.start()

    def act(client, kind, row_pick, value):
        row_ids = client.replica.table.row_ids()
        if not row_ids:
            return
        row_id = row_ids[row_pick % len(row_ids)]
        try:
            if kind == "fill":
                client.fill(row_id, "k", value)
            elif kind == "upvote":
                client.upvote(row_id)
            else:
                client.downvote(row_id)
        except Exception:
            pass

    plan = [
        (0.1, "c0", "fill", 0, "x"), (0.2, "c1", "fill", 1, "y"),
        (0.4, "c0", "upvote", 0, ""), (0.5, "c1", "fill", 0, "z"),
        (0.7, "c1", "downvote", 0, ""), (0.9, "c0", "fill", 1, "x"),
        (1.1, "c1", "upvote", 1, ""), (1.3, "c0", "downvote", 1, ""),
    ]
    for at, who, kind, row_pick, value in plan:
        sim.schedule_at(
            at,
            lambda c=clients[who], k=kind, r=row_pick, v=value: act(c, k, r, v),
        )
    sim.run()
    assert net.quiescent()
    net.check_accounting()
    assert net.sanitizer.messages_sealed > 0
    assert net.sanitizer.violations_detected == 0
    reference = backend.replica.snapshot()
    for client in clients.values():
        assert client.replica.snapshot() == reference


def test_sharded_full_stack_converges_with_sanitizer_enabled():
    """The sharded assembly under the sanitizer: every payload — client
    ops, server broadcasts, *and* the shard-to-shard exchange batches —
    is sealed, frozen, and verified, through a mid-run shard partition
    and its heal-time resync, and every replica still converges."""
    from repro.net import FaultInjector, FaultPlan, ShardPartitionWindow
    from repro.server.shard import ShardedBackend, shard_endpoint

    schema = Schema(
        name="Mini",
        columns=(
            Column("k", DataType.STRING),
            Column("a", DataType.INT),
        ),
        primary_key=("k",),
    )
    scoring = ThresholdScoring(2)
    sim = Simulator()
    net = Network(
        sim,
        default_latency=ConstantLatency(0.05),
        streams=RngStreams(7),
        sanitize=True,
    )
    backend = ShardedBackend(
        sim, net, schema, scoring, Template.cardinality(2), shards=3,
        oplog_capacity=64,
    )
    plan = FaultPlan(
        shard_partitions=(
            ShardPartitionWindow(
                tuple((shard_endpoint(k),) for k in range(3)),
                start=0.3,
                end=0.8,
            ),
        )
    )
    injector = FaultInjector(sim, net, plan)
    backend.bind_faults(injector)
    injector.install()
    streams = RngStreams(7)
    clients = {}
    for name in ("c0", "c1", "c2"):
        client = WorkerClient(name, schema, scoring, net, streams=streams)
        client.bootstrap(backend.attach_client(name))
        clients[name] = client
    backend.start()

    def act(client, kind, row_pick, value):
        row_ids = client.replica.table.row_ids()
        if not row_ids:
            return
        row_id = row_ids[row_pick % len(row_ids)]
        try:
            if kind == "fill":
                client.fill(row_id, "k", value)
            elif kind == "upvote":
                client.upvote(row_id)
            else:
                client.downvote(row_id)
        except Exception:
            pass

    plan_ops = [
        (0.1, "c0", "fill", 0, "x"), (0.2, "c1", "fill", 1, "y"),
        (0.4, "c0", "upvote", 0, ""), (0.5, "c1", "fill", 0, "z"),
        (0.6, "c2", "fill", 1, "w"), (0.7, "c1", "downvote", 0, ""),
        (0.9, "c0", "fill", 1, "x"), (1.1, "c1", "upvote", 1, ""),
        (1.3, "c2", "downvote", 1, ""), (1.5, "c2", "upvote", 0, ""),
    ]
    for at, who, kind, row_pick, value in plan_ops:
        sim.schedule_at(
            at,
            lambda c=clients[who], k=kind, r=row_pick, v=value: act(c, k, r, v),
        )
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert net.quiescent()
    net.check_accounting()
    assert net.sanitizer.messages_sealed > 0
    assert net.sanitizer.violations_detected == 0
    assert backend.fully_exchanged()
    reference = backend.replica.snapshot()
    for shard in backend.shards:
        assert shard.replica.snapshot() == reference
    for client in clients.values():
        assert client.replica.snapshot() == reference
    assert any(e.kind == "shard-partition" for e in injector.events)
    assert any(e.kind == "shard-heal" for e in injector.events)
