"""The CollectionSession facade and the entropy-normalization aliases.

The facade must wire exactly the component graph the rigs used to build
by hand — same named entropy streams, same event ordering — so a
session-built run replays a hand-built run message for message.  The
``rng=`` aliases the streams replaced are gone (they survived exactly
the one promised release); constructors reject them outright.
"""

from __future__ import annotations

import random

import pytest

from repro.core.scoring import ThresholdScoring
from repro.experiments.harness import (
    ExperimentConfig,
    make_policy,
    resolve_domain,
)
from repro.marketplace import Marketplace
from repro.net import Network
from repro.session import CollectionSession, WorkerSpec
from repro.sim import RngStreams, Simulator
from repro.workers import DiligentPolicy, SimulatedWorker
from repro.workers.profile import WorkerProfile


def _session_and_specs(seed: int = 42, workers: int = 3, rows: int = 5):
    config = ExperimentConfig(
        seed=seed, num_workers=workers, target_rows=rows
    )
    schema, full_truth, truth_band = resolve_domain(config)
    profiles = config.resolved_profiles()
    session = CollectionSession(
        seed=seed,
        schema=schema,
        scoring=ThresholdScoring(config.min_votes),
        target_rows=rows,
    )
    specs = [
        WorkerSpec(
            worker_id=f"worker-{index}",
            policy=lambda wid, i=index: make_policy(
                "diligent", truth_band, profiles[i], session.streams, wid
            ),
            profile=profiles[index],
            vote_cap=config.vote_cap,
        )
        for index in range(workers)
    ]
    return session, specs, full_truth


class TestConstruction:
    def test_schema_requires_scoring(self):
        schema, _, _ = resolve_domain(ExperimentConfig())
        with pytest.raises(ValueError, match="scoring"):
            CollectionSession(schema=schema, target_rows=5)

    def test_schema_requires_constraints(self):
        schema, _, _ = resolve_domain(ExperimentConfig())
        with pytest.raises(ValueError, match="template"):
            CollectionSession(schema=schema, scoring=ThresholdScoring(2))

    def test_substrate_only_session_has_no_backend(self):
        session = CollectionSession(seed=1)
        assert session.backend is None
        with pytest.raises(RuntimeError, match="back-end server"):
            session.recruit([])
        with pytest.raises(RuntimeError, match="back-end server"):
            session.attach_estimator(1.0)

    def test_substrate_only_session_exposes_frontend(self):
        session = CollectionSession(seed=1, db_name="session-test")
        assert session.frontend.db is session.database
        assert session.database.name == "session-test"

    def test_target_rows_builds_cardinality_template(self):
        session = _session_and_specs(rows=5)[0]
        assert session.template is not None
        assert len(session.template.rows) == 5

    def test_disabled_obs_by_default(self):
        session = CollectionSession(seed=1)
        assert not session.obs.enabled


class TestRunning:
    def test_recruited_run_completes(self):
        session, specs, full_truth = _session_and_specs()
        session.recruit(specs, mean_interarrival=10.0)
        session.run(until=3 * 3600.0)
        backend = session.backend
        assert backend is not None and backend.completed
        final = [row.value for row in backend.final_rows()]
        assert len(final) == 5
        assert full_truth.accuracy_of(final) == 1.0
        assert set(session.workers) == {spec.worker_id for spec in specs}

    def test_recruit_rejects_duplicate_worker_ids(self):
        session, specs, _ = _session_and_specs()
        with pytest.raises(ValueError, match="duplicate"):
            session.recruit([specs[0], specs[0]])

    def test_add_workers_attaches_immediately(self):
        session, specs, _ = _session_and_specs()
        assert session.add_workers(specs) is session
        assert set(session.clients) == {spec.worker_id for spec in specs}
        session.run(until=3 * 3600.0)
        assert session.backend is not None and session.backend.completed

    def test_same_seed_sessions_replay_identically(self):
        results = []
        for _ in range(2):
            session, specs, _ = _session_and_specs()
            session.recruit(specs, mean_interarrival=10.0)
            session.run(until=3 * 3600.0)
            backend = session.backend
            assert backend is not None
            results.append(
                (
                    backend.completion_time,
                    session.network.stats.messages_sent,
                    [dict(row.value) for row in backend.final_rows()],
                )
            )
        assert results[0] == results[1]

    def test_run_is_idempotent_about_backend_start(self):
        session, specs, _ = _session_and_specs()
        session.add_workers(specs)
        session.run(until=60.0)
        session.run(until=3 * 3600.0)  # must not start() the backend twice
        assert session.backend is not None and session.backend.completed

    def test_policy_instances_are_accepted_too(self):
        # A WorkerSpec can carry a ready policy object instead of a
        # factory; entropy-free policies don't need the indirection.
        config = ExperimentConfig(seed=42, num_workers=1, target_rows=2)
        schema, _, truth_band = resolve_domain(config)
        profile = config.resolved_profiles()[0]
        session = CollectionSession(
            seed=42,
            schema=schema,
            scoring=ThresholdScoring(1),
            target_rows=2,
        )
        knowledge = truth_band.sample_known_subset(
            session.streams.stream("knowledge-worker-0"), 0.8
        )
        spec = WorkerSpec(
            worker_id="worker-0",
            policy=DiligentPolicy(knowledge, profile, reference=truth_band),
            profile=profile,
        )
        worker = session.add_worker(spec)
        assert worker is session.workers["worker-0"]
        session.run(until=3600.0)
        assert session.backend is not None
        assert len(session.backend.final_rows()) >= 1


class TestEntropySources:
    """The ``rng=`` alias is gone; named streams are the only source."""

    def test_network_rejects_rng_keyword(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            Network(sim, rng=random.Random(0))

    def test_network_streams_draws_named_stream(self):
        sim = Simulator()
        streams = RngStreams(7)
        network = Network(sim, streams=streams)
        assert network.rng is streams.stream("network")

    def test_marketplace_rejects_rng_keyword(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            Marketplace(sim, rng=random.Random(0))

    def test_worker_client_rejects_rng_keyword(self):
        from repro.client import WorkerClient

        config = ExperimentConfig()
        schema, _, _ = resolve_domain(config)
        sim = Simulator()
        network = Network(sim, streams=RngStreams(0))
        with pytest.raises(TypeError):
            WorkerClient(
                "w1",
                schema,
                ThresholdScoring(2),
                network,
                rng=random.Random(0),
            )

    def test_simulated_worker_requires_entropy(self):
        config = ExperimentConfig()
        schema, _, truth = resolve_domain(config)
        sim = Simulator()
        streams = RngStreams(0)
        network = Network(sim, streams=streams)
        from repro.client import WorkerClient

        client = WorkerClient(
            "w1", schema, ThresholdScoring(2), network, streams=streams
        )
        profile = WorkerProfile()
        knowledge = truth.sample_known_subset(random.Random(0), 0.5)
        policy = DiligentPolicy(knowledge, profile, reference=truth)
        with pytest.raises(TypeError, match="entropy"):
            SimulatedWorker(client, policy, profile, sim)
        with pytest.raises(TypeError):
            SimulatedWorker(
                client, policy, profile, sim, rng=random.Random(0)
            )
