"""Unit tests for ground truth and the synthetic universes."""

import random

import pytest

from repro.core import RowValue
from repro.datasets import (
    CityUniverse,
    GroundTruth,
    MovieUniverse,
    SoccerPlayerUniverse,
)


class TestGroundTruth:
    def setup_method(self):
        self.universe = SoccerPlayerUniverse(seed=1, size=60)
        self.truth = self.universe.ground_truth()

    def test_unique_keys(self):
        keys = self.truth.keys()
        assert len(set(keys)) == len(keys)

    def test_by_key_roundtrip(self):
        row = self.truth.rows[0]
        key = row.key(self.truth.schema.key_columns)
        assert self.truth.by_key(key) == row
        assert self.truth.by_key(("nobody", "nowhere")) is None

    def test_lookup_consistent_empty_returns_all(self):
        assert len(self.truth.lookup_consistent(RowValue())) == 60

    def test_lookup_consistent_matches_bruteforce(self):
        for row in self.truth.rows[:5]:
            partial = RowValue({"nationality": row["nationality"]})
            fast = self.truth.lookup_consistent(partial)
            slow = [r for r in self.truth.rows if r.subsumes(partial)]
            assert fast == slow

    def test_lookup_consistent_unknown_value(self):
        assert self.truth.lookup_consistent(
            RowValue({"name": "Nobody Anywhere"})
        ) == []

    def test_true_value_unique_entity(self):
        row = self.truth.rows[0]
        partial = RowValue(
            {"name": row["name"], "nationality": row["nationality"]}
        )
        assert self.truth.true_value(partial, "caps") == row["caps"]

    def test_true_value_ambiguous_returns_none(self):
        assert self.truth.true_value(RowValue(), "caps") is None

    def test_incomplete_row_rejected(self):
        with pytest.raises(ValueError):
            GroundTruth(self.truth.schema, [RowValue({"name": "x"})])

    def test_duplicate_key_rejected(self):
        row = self.truth.rows[0]
        with pytest.raises(ValueError):
            GroundTruth(self.truth.schema, [row, row])

    def test_sample_known_subset(self):
        rng = random.Random(0)
        subset = self.truth.sample_known_subset(rng, 0.5)
        assert len(subset) == 30
        assert all(row in self.truth.rows for row in subset.rows)

    def test_sample_known_subset_deterministic(self):
        a = self.truth.sample_known_subset(random.Random(3), 0.4)
        b = self.truth.sample_known_subset(random.Random(3), 0.4)
        assert a.rows == b.rows

    def test_sample_fraction_validation(self):
        with pytest.raises(ValueError):
            self.truth.sample_known_subset(random.Random(0), 1.5)

    def test_filter(self):
        brazilians = self.truth.filter(
            lambda row: row["nationality"] == "Brazil"
        )
        assert all(r["nationality"] == "Brazil" for r in brazilians.rows)

    def test_accuracy_of(self):
        rows = self.truth.rows[:4]
        assert self.truth.accuracy_of(rows) == 1.0
        wrong = RowValue({**dict(rows[0]), "caps": 999})
        assert self.truth.accuracy_of([wrong] + rows[1:4]) == pytest.approx(
            3 / 4
        )
        assert self.truth.accuracy_of([]) == 1.0


class TestSoccerUniverse:
    def test_deterministic(self):
        a = SoccerPlayerUniverse(seed=5, size=40).ground_truth()
        b = SoccerPlayerUniverse(seed=5, size=40).ground_truth()
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = SoccerPlayerUniverse(seed=5, size=40).ground_truth()
        b = SoccerPlayerUniverse(seed=6, size=40).ground_truth()
        assert a.rows != b.rows

    def test_caps_band_selects_target_population(self):
        universe = SoccerPlayerUniverse(seed=0, size=600)
        band = universe.caps_band(80, 99)
        assert all(80 <= row["caps"] <= 99 for row in band.rows)
        # The paper estimates 200+ eligible players.
        assert len(band) > 200

    def test_dob_column_optional(self):
        with_dob = SoccerPlayerUniverse(seed=0, size=10, include_dob=True)
        without = SoccerPlayerUniverse(seed=0, size=10, include_dob=False)
        assert "dob" in with_dob.schema.column_names
        assert "dob" not in without.schema.column_names

    def test_values_validate_against_schema(self):
        universe = SoccerPlayerUniverse(seed=2, size=50)
        for row in universe.ground_truth().rows:
            universe.schema.validate_assignment(dict(row))

    def test_goalkeepers_score_few_goals(self):
        universe = SoccerPlayerUniverse(seed=3, size=300)
        keepers = [
            r for r in universe.ground_truth().rows if r["position"] == "GK"
        ]
        assert keepers
        assert all(r["goals"] == 0 for r in keepers)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SoccerPlayerUniverse(size=0)


@pytest.mark.parametrize("universe_cls", [CityUniverse, MovieUniverse])
class TestOtherUniverses:
    def test_deterministic(self, universe_cls):
        a = universe_cls(seed=1, size=30).ground_truth()
        b = universe_cls(seed=1, size=30).ground_truth()
        assert a.rows == b.rows

    def test_unique_keys_and_schema_valid(self, universe_cls):
        universe = universe_cls(seed=2, size=50)
        truth = universe.ground_truth()
        assert len(truth) == 50
        for row in truth.rows:
            universe.schema.validate_assignment(dict(row))

    def test_size_validation(self, universe_cls):
        with pytest.raises(ValueError):
            universe_cls(size=0)
