"""Unit tests for the fault-injection subsystem (repro.net.faults)."""

import math
import random

import pytest

from repro.net import (
    ConstantLatency,
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    Network,
    PartitionWindow,
    ShardCrashWindow,
    ShardPartitionWindow,
    fault_plan_from_dict,
)
from repro.sim import RngStreams, Simulator


class Sink:
    def __init__(self):
        self.got = []

    def on_message(self, source, payload):
        self.got.append((source, payload))


def make_net(latency=None, seed=0):
    sim = Simulator()
    net = Network(sim, default_latency=latency or ConstantLatency(0.1),
                  streams=RngStreams(seed))
    return sim, net


# -- FaultPlan ---------------------------------------------------------------


def test_window_validation():
    with pytest.raises(FaultPlanError):
        DisconnectWindow("a", start=-1.0, end=2.0)
    with pytest.raises(FaultPlanError):
        DisconnectWindow("a", start=2.0, end=2.0)
    with pytest.raises(FaultPlanError):
        PartitionWindow((), start=0.0, end=1.0)
    with pytest.raises(FaultPlanError):
        LatencySpike(start=0.0, end=1.0, factor=0.0)


def test_outage_windows_merge_overlaps():
    plan = FaultPlan(
        disconnects=(
            DisconnectWindow("a", 1.0, 3.0),
            DisconnectWindow("a", 2.0, 5.0),
            DisconnectWindow("a", 7.0, 8.0),
        ),
        partitions=(PartitionWindow(("a", "b"), 4.5, 6.0),),
    )
    assert plan.outage_windows("a") == [(1.0, 6.0), (7.0, 8.0)]
    assert plan.outage_windows("b") == [(4.5, 6.0)]
    assert plan.faulted_endpoints() == ["a", "b"]


def test_permanent_disconnect_window():
    plan = FaultPlan(disconnects=(DisconnectWindow("a", 1.0),))
    assert plan.outage_windows("a") == [(1.0, math.inf)]


def test_latency_factor_combines_matching_spikes():
    plan = FaultPlan(
        spikes=(
            LatencySpike(start=0.0, end=10.0, factor=2.0),
            LatencySpike(start=0.0, end=5.0, factor=3.0, source="a"),
            LatencySpike(start=0.0, end=10.0, factor=7.0, source="z"),
        )
    )
    assert plan.latency_factor("a", "b", now=1.0) == pytest.approx(6.0)
    assert plan.latency_factor("a", "b", now=6.0) == pytest.approx(2.0)
    assert plan.latency_factor("b", "a", now=1.0) == pytest.approx(2.0)
    assert plan.latency_factor("a", "b", now=10.0) == pytest.approx(1.0)


def test_generate_is_deterministic_in_the_seed():
    endpoints = [f"c{i}" for i in range(6)]
    plan_a = FaultPlan.generate(random.Random(42), endpoints, horizon=100.0)
    plan_b = FaultPlan.generate(random.Random(42), endpoints, horizon=100.0)
    plan_c = FaultPlan.generate(random.Random(43), endpoints, horizon=100.0)
    assert plan_a == plan_b
    assert plan_a != plan_c


def test_generate_windows_close_before_horizon():
    for seed in range(30):
        plan = FaultPlan.generate(
            random.Random(seed), ["a", "b", "c"], horizon=50.0
        )
        for window in plan.disconnects:
            assert 0.0 <= window.start < window.end <= 50.0


# -- FaultInjector -----------------------------------------------------------


def test_injector_drops_sends_during_outage_only():
    sim, net = make_net()
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    plan = FaultPlan(disconnects=(DisconnectWindow("b", 1.0, 2.0),))
    injector = FaultInjector(sim, net, plan)
    injector.install()

    for at in (0.0, 1.5, 3.0):
        sim.schedule_at(at, lambda: net.send("a", "b", sim.now))
    sim.run()
    assert [round(p, 1) for _, p in sink.got] == [0.0, 3.0]
    assert net.stats.messages_dropped == 1
    assert net.quiescent()


def test_injector_purges_wire_at_outage_start_and_requeues_outbound():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("server", Sink())
    net.register("b", Sink())
    requeued = []
    plan = FaultPlan(disconnects=(DisconnectWindow("b", 0.5, 2.0),))
    injector = FaultInjector(sim, net, plan)
    injector.bind("b", on_requeue=requeued.extend)
    injector.install()

    net.send("b", "server", "mine")      # in flight at 0.5 -> requeued
    net.send("server", "b", "broadcast")  # in flight at 0.5 -> lost
    sim.run()
    assert requeued == ["mine"]
    assert net.stats.messages_dropped == 2
    assert net.quiescent()


def test_injector_calls_handlers_once_per_merged_window():
    sim, net = make_net()
    net.register("b", Sink())
    events = []
    plan = FaultPlan(
        disconnects=(
            DisconnectWindow("b", 1.0, 3.0),
            DisconnectWindow("b", 2.0, 4.0),  # overlaps; merged
        )
    )
    injector = FaultInjector(sim, net, plan)
    injector.bind(
        "b",
        on_disconnect=lambda: events.append(("down", sim.now)),
        on_reconnect=lambda: events.append(("up", sim.now)),
    )
    injector.install()
    sim.run()
    assert events == [("down", 1.0), ("up", 4.0)]
    assert [e.kind for e in injector.events] == ["disconnect", "reconnect"]


def test_injector_is_down_and_force_reconnect():
    sim, net = make_net()
    net.register("b", Sink())
    plan = FaultPlan(disconnects=(DisconnectWindow("b", 1.0),))  # forever
    injector = FaultInjector(sim, net, plan)
    injector.install()
    sim.run()
    assert injector.is_down("b")
    assert injector.down == frozenset({"b"})
    injector.force_reconnect_all()
    assert not injector.is_down("b")
    assert [e.kind for e in injector.events] == ["disconnect", "reconnect"]


def test_injector_latency_spike_preserves_fifo():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    plan = FaultPlan(spikes=(LatencySpike(start=0.0, end=1.0, factor=30.0),))
    injector = FaultInjector(sim, net, plan)
    injector.install()
    sim.schedule_at(0.0, lambda: net.send("a", "b", "spiked"))   # lands at 30
    sim.schedule_at(2.0, lambda: net.send("a", "b", "normal"))   # clamped
    sim.run()
    assert [p for _, p in sink.got] == ["spiked", "normal"]
    assert net.quiescent()


def test_injector_install_twice_rejected():
    sim, net = make_net()
    injector = FaultInjector(sim, net, FaultPlan())
    injector.install()
    with pytest.raises(RuntimeError):
        injector.install()


# -- Crash windows (plan layer) ----------------------------------------------


def test_crash_window_requires_finite_end():
    with pytest.raises(FaultPlanError):
        ShardCrashWindow("shard-0", start=1.0, end=math.inf)
    with pytest.raises(FaultPlanError):
        ShardCrashWindow("shard-0", start=2.0, end=2.0)
    with pytest.raises(FaultPlanError):
        ShardCrashWindow("shard-0", start=-1.0, end=2.0)


def test_crash_windows_may_not_overlap_per_endpoint():
    with pytest.raises(FaultPlanError, match="overlapping crash windows"):
        FaultPlan(crashes=(
            ShardCrashWindow("shard-0", 1.0, 5.0),
            ShardCrashWindow("shard-0", 4.0, 8.0),
        ))
    # Different endpoints may overlap; same endpoint back-to-back is fine.
    plan = FaultPlan(crashes=(
        ShardCrashWindow("shard-0", 1.0, 5.0),
        ShardCrashWindow("shard-1", 4.0, 8.0),
        ShardCrashWindow("shard-0", 5.0, 6.0),
    ))
    assert plan.crashed_endpoints() == ["shard-0", "shard-1"]
    assert not plan.is_empty


def test_generate_crash_windows_deterministic_and_closed():
    shards = ["shard-0", "shard-1", "shard-2"]
    plan_a = FaultPlan.generate(
        random.Random(11), [], horizon=100.0,
        crash_endpoints=shards, crash_prob=1.0,
    )
    plan_b = FaultPlan.generate(
        random.Random(11), [], horizon=100.0,
        crash_endpoints=shards, crash_prob=1.0,
    )
    assert plan_a == plan_b
    assert plan_a.crashes
    for window in plan_a.crashes:
        assert 0.0 <= window.start < window.end <= 100.0


def test_generate_respects_max_crashes_and_gap():
    for seed in range(20):
        plan = FaultPlan.generate(
            random.Random(seed), [], horizon=200.0,
            crash_endpoints=["s0"], crash_prob=1.0,
            max_crashes_per_endpoint=4, min_crash_gap=10.0,
        )
        windows = sorted(
            (w.start, w.end) for w in plan.crashes if w.endpoint == "s0"
        )
        assert len(windows) <= 4
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start - prev_end >= 10.0


def test_generate_caps_concurrent_crashes():
    for seed in range(20):
        plan = FaultPlan.generate(
            random.Random(seed), [], horizon=100.0,
            crash_endpoints=[f"s{i}" for i in range(5)], crash_prob=1.0,
        )
        # max_concurrent_crashes defaults to 1: no two crash windows
        # anywhere in the plan may overlap.
        windows = sorted((w.start, w.end) for w in plan.crashes)
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start >= prev_end


def test_generate_validates_crash_parameters():
    with pytest.raises(FaultPlanError, match="max_concurrent_crashes"):
        FaultPlan.generate(
            random.Random(0), [], horizon=10.0,
            crash_endpoints=["s0"], max_concurrent_crashes=0,
        )
    with pytest.raises(FaultPlanError, match="min_crash_gap"):
        FaultPlan.generate(
            random.Random(0), [], horizon=10.0,
            crash_endpoints=["s0"], min_crash_gap=-1.0,
        )


def test_fault_plan_dict_round_trip():
    plan = FaultPlan(
        disconnects=(
            DisconnectWindow("a", 1.0, 3.0),
            DisconnectWindow("b", 2.0),  # permanent: inf end -> null
        ),
        partitions=(PartitionWindow(("a", "c"), 4.0, 6.0),),
        spikes=(LatencySpike(start=0.5, end=2.5, factor=4.0, source="a"),),
        shard_partitions=(
            ShardPartitionWindow((("s0",), ("s1", "s2")), 1.0, 9.0),
        ),
        crashes=(ShardCrashWindow("s1", 3.0, 7.0),),
    )
    document = plan.to_dict()
    assert document["disconnects"][1]["end"] is None
    assert fault_plan_from_dict(document) == plan
    # JSON-safe: survives an actual dumps/loads cycle.
    import json

    assert fault_plan_from_dict(json.loads(json.dumps(document))) == plan


def test_fault_plan_from_dict_rejects_malformed_windows():
    with pytest.raises(FaultPlanError):
        fault_plan_from_dict(
            {"crashes": [{"endpoint": "s0", "start": 5.0, "end": 2.0}]}
        )


# -- Crash windows (injector layer) ------------------------------------------


def test_injector_crash_drops_traffic_and_fires_handlers():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    sink = Sink()
    net.register("s0", sink)
    events = []
    plan = FaultPlan(crashes=(ShardCrashWindow("s0", 1.0, 4.0),))
    injector = FaultInjector(sim, net, plan)
    injector.bind(
        "s0",
        on_crash=lambda: events.append(("crash", sim.now)),
        on_restart=lambda: events.append(("restart", sim.now)),
    )
    injector.install()

    net.send("a", "s0", "in-flight")                       # purged at 1.0
    sim.schedule_at(2.0, lambda: net.send("a", "s0", "dropped"))
    sim.schedule_at(5.0, lambda: net.send("a", "s0", "after"))
    sim.schedule_at(1.5, lambda: events.append(
        ("crashed?", injector.is_crashed("s0"))))
    sim.run()
    assert events == [
        ("crash", 1.0), ("crashed?", True), ("restart", 4.0),
    ]
    assert [p for _, p in sink.got] == ["after"]
    assert [e.kind for e in injector.events] == ["crash", "restart"]
    assert injector.events[0].purged == 1
    assert injector.crashed == frozenset()
    assert net.quiescent()


def test_injector_restart_handler_can_send_traffic():
    """_end_crash clears the crashed set *before* firing on_restart, so
    recovery resync traffic sent from inside the handler flows."""
    sim, net = make_net()
    sink = Sink()
    net.register("peer", sink)
    net.register("s0", Sink())
    plan = FaultPlan(crashes=(ShardCrashWindow("s0", 1.0, 2.0),))
    injector = FaultInjector(sim, net, plan)
    injector.bind("s0", on_restart=lambda: net.send("s0", "peer", "resync"))
    injector.install()
    sim.run()
    assert [p for _, p in sink.got] == ["resync"]


def test_force_reconnect_all_ends_crashes():
    sim, net = make_net()
    net.register("s0", Sink())
    restarted = []
    plan = FaultPlan(crashes=(ShardCrashWindow("s0", 1.0, 50.0),))
    injector = FaultInjector(sim, net, plan)
    injector.bind("s0", on_restart=lambda: restarted.append(sim.now))
    injector.install()
    sim.run(until=10.0)
    assert injector.is_crashed("s0")
    injector.force_reconnect_all()
    assert not injector.is_crashed("s0")
    assert restarted == [10.0]
    # The originally scheduled window end is now a no-op.
    sim.run()
    assert restarted == [10.0]
    assert [e.kind for e in injector.events] == ["crash", "restart"]


# -- Shard-partition heal interplay ------------------------------------------


def test_overlapping_partitions_heal_links_only_at_last_window_end():
    """Two overlapping shard partitions cut the same links; the link
    refcount must keep the link severed — and must NOT fire the heal
    callback — until the *last* covering window ends."""
    sim, net = make_net()
    for name in ("s0", "s1"):
        net.register(name, Sink())
    healed = []
    plan = FaultPlan(shard_partitions=(
        ShardPartitionWindow((("s0",), ("s1",)), 1.0, 5.0),
        ShardPartitionWindow((("s0",), ("s1",)), 3.0, 8.0),
    ))
    injector = FaultInjector(sim, net, plan)
    injector.on_link_heal(lambda links: healed.append((sim.now, links)))
    injector.install()

    sim.run(until=6.0)
    # First window ended at 5.0 while the second still covers the link.
    assert healed == []
    assert injector.is_cut("s0", "s1")
    sim.run()
    assert healed == [(8.0, [("s0", "s1"), ("s1", "s0")])]
    assert not injector.is_cut("s0", "s1")


def test_force_reconnect_all_heals_open_partition_and_fires_callback():
    """Satellite: force_reconnect_all() during an open shard-partition
    window must fire on_link_heal exactly once per healed link, and the
    window's scheduled end must then be a no-op (no second heal)."""
    sim, net = make_net()
    for name in ("s0", "s1"):
        net.register(name, Sink())
    healed = []
    plan = FaultPlan(shard_partitions=(
        ShardPartitionWindow((("s0",), ("s1",)), 1.0, 50.0),
    ))
    injector = FaultInjector(sim, net, plan)
    injector.on_link_heal(lambda links: healed.append((sim.now, list(links))))
    injector.install()
    sim.run(until=10.0)
    assert injector.is_cut("s0", "s1")

    injector.force_reconnect_all()
    assert healed == [(10.0, [("s0", "s1"), ("s1", "s0")])]
    assert not injector.is_cut("s0", "s1")
    sim.run()  # the scheduled end at 50.0 fires into a closed window
    assert healed == [(10.0, [("s0", "s1"), ("s1", "s0")])]
    assert [e.kind for e in injector.events] == [
        "shard-partition", "shard-heal",
    ]


def test_force_reconnect_all_closes_everything_at_once():
    """Outage + open shard partition + crash, all forced closed in one
    call: each fires its own end-side choreography exactly once."""
    sim, net = make_net()
    for name in ("w0", "s0", "s1"):
        net.register(name, Sink())
    calls = []
    plan = FaultPlan(
        disconnects=(DisconnectWindow("w0", 1.0),),
        shard_partitions=(
            ShardPartitionWindow((("s0",), ("s1",)), 1.0, 90.0),
        ),
        crashes=(ShardCrashWindow("s0", 2.0, 80.0),),
    )
    injector = FaultInjector(sim, net, plan)
    injector.bind("w0", on_reconnect=lambda: calls.append("reconnect"))
    injector.bind("s0", on_restart=lambda: calls.append("restart"))
    injector.on_link_heal(lambda links: calls.append("heal"))
    injector.install()
    sim.run(until=10.0)
    assert injector.is_down("w0")
    assert injector.is_crashed("s0")
    assert injector.is_cut("s0", "s1")

    injector.force_reconnect_all()
    assert calls == ["reconnect", "heal", "restart"]
    assert not injector.is_down("w0")
    assert not injector.is_crashed("s0")
    assert injector.cut_links == frozenset()
    sim.run()
    assert calls == ["reconnect", "heal", "restart"]
