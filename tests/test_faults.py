"""Unit tests for the fault-injection subsystem (repro.net.faults)."""

import math
import random

import pytest

from repro.net import (
    ConstantLatency,
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    Network,
    PartitionWindow,
)
from repro.sim import RngStreams, Simulator


class Sink:
    def __init__(self):
        self.got = []

    def on_message(self, source, payload):
        self.got.append((source, payload))


def make_net(latency=None, seed=0):
    sim = Simulator()
    net = Network(sim, default_latency=latency or ConstantLatency(0.1),
                  streams=RngStreams(seed))
    return sim, net


# -- FaultPlan ---------------------------------------------------------------


def test_window_validation():
    with pytest.raises(FaultPlanError):
        DisconnectWindow("a", start=-1.0, end=2.0)
    with pytest.raises(FaultPlanError):
        DisconnectWindow("a", start=2.0, end=2.0)
    with pytest.raises(FaultPlanError):
        PartitionWindow((), start=0.0, end=1.0)
    with pytest.raises(FaultPlanError):
        LatencySpike(start=0.0, end=1.0, factor=0.0)


def test_outage_windows_merge_overlaps():
    plan = FaultPlan(
        disconnects=(
            DisconnectWindow("a", 1.0, 3.0),
            DisconnectWindow("a", 2.0, 5.0),
            DisconnectWindow("a", 7.0, 8.0),
        ),
        partitions=(PartitionWindow(("a", "b"), 4.5, 6.0),),
    )
    assert plan.outage_windows("a") == [(1.0, 6.0), (7.0, 8.0)]
    assert plan.outage_windows("b") == [(4.5, 6.0)]
    assert plan.faulted_endpoints() == ["a", "b"]


def test_permanent_disconnect_window():
    plan = FaultPlan(disconnects=(DisconnectWindow("a", 1.0),))
    assert plan.outage_windows("a") == [(1.0, math.inf)]


def test_latency_factor_combines_matching_spikes():
    plan = FaultPlan(
        spikes=(
            LatencySpike(start=0.0, end=10.0, factor=2.0),
            LatencySpike(start=0.0, end=5.0, factor=3.0, source="a"),
            LatencySpike(start=0.0, end=10.0, factor=7.0, source="z"),
        )
    )
    assert plan.latency_factor("a", "b", now=1.0) == pytest.approx(6.0)
    assert plan.latency_factor("a", "b", now=6.0) == pytest.approx(2.0)
    assert plan.latency_factor("b", "a", now=1.0) == pytest.approx(2.0)
    assert plan.latency_factor("a", "b", now=10.0) == pytest.approx(1.0)


def test_generate_is_deterministic_in_the_seed():
    endpoints = [f"c{i}" for i in range(6)]
    plan_a = FaultPlan.generate(random.Random(42), endpoints, horizon=100.0)
    plan_b = FaultPlan.generate(random.Random(42), endpoints, horizon=100.0)
    plan_c = FaultPlan.generate(random.Random(43), endpoints, horizon=100.0)
    assert plan_a == plan_b
    assert plan_a != plan_c


def test_generate_windows_close_before_horizon():
    for seed in range(30):
        plan = FaultPlan.generate(
            random.Random(seed), ["a", "b", "c"], horizon=50.0
        )
        for window in plan.disconnects:
            assert 0.0 <= window.start < window.end <= 50.0


# -- FaultInjector -----------------------------------------------------------


def test_injector_drops_sends_during_outage_only():
    sim, net = make_net()
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    plan = FaultPlan(disconnects=(DisconnectWindow("b", 1.0, 2.0),))
    injector = FaultInjector(sim, net, plan)
    injector.install()

    for at in (0.0, 1.5, 3.0):
        sim.schedule_at(at, lambda: net.send("a", "b", sim.now))
    sim.run()
    assert [round(p, 1) for _, p in sink.got] == [0.0, 3.0]
    assert net.stats.messages_dropped == 1
    assert net.quiescent()


def test_injector_purges_wire_at_outage_start_and_requeues_outbound():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("server", Sink())
    net.register("b", Sink())
    requeued = []
    plan = FaultPlan(disconnects=(DisconnectWindow("b", 0.5, 2.0),))
    injector = FaultInjector(sim, net, plan)
    injector.bind("b", on_requeue=requeued.extend)
    injector.install()

    net.send("b", "server", "mine")      # in flight at 0.5 -> requeued
    net.send("server", "b", "broadcast")  # in flight at 0.5 -> lost
    sim.run()
    assert requeued == ["mine"]
    assert net.stats.messages_dropped == 2
    assert net.quiescent()


def test_injector_calls_handlers_once_per_merged_window():
    sim, net = make_net()
    net.register("b", Sink())
    events = []
    plan = FaultPlan(
        disconnects=(
            DisconnectWindow("b", 1.0, 3.0),
            DisconnectWindow("b", 2.0, 4.0),  # overlaps; merged
        )
    )
    injector = FaultInjector(sim, net, plan)
    injector.bind(
        "b",
        on_disconnect=lambda: events.append(("down", sim.now)),
        on_reconnect=lambda: events.append(("up", sim.now)),
    )
    injector.install()
    sim.run()
    assert events == [("down", 1.0), ("up", 4.0)]
    assert [e.kind for e in injector.events] == ["disconnect", "reconnect"]


def test_injector_is_down_and_force_reconnect():
    sim, net = make_net()
    net.register("b", Sink())
    plan = FaultPlan(disconnects=(DisconnectWindow("b", 1.0),))  # forever
    injector = FaultInjector(sim, net, plan)
    injector.install()
    sim.run()
    assert injector.is_down("b")
    assert injector.down == frozenset({"b"})
    injector.force_reconnect_all()
    assert not injector.is_down("b")
    assert [e.kind for e in injector.events] == ["disconnect", "reconnect"]


def test_injector_latency_spike_preserves_fifo():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    plan = FaultPlan(spikes=(LatencySpike(start=0.0, end=1.0, factor=30.0),))
    injector = FaultInjector(sim, net, plan)
    injector.install()
    sim.schedule_at(0.0, lambda: net.send("a", "b", "spiked"))   # lands at 30
    sim.schedule_at(2.0, lambda: net.send("a", "b", "normal"))   # clamped
    sim.run()
    assert [p for _, p in sink.got] == ["spiked", "normal"]
    assert net.quiescent()


def test_injector_install_twice_rejected():
    sim, net = make_net()
    injector = FaultInjector(sim, net, FaultPlan())
    injector.install()
    with pytest.raises(RuntimeError):
        injector.install()
