"""The crowdlint 2.0 substrate: the project model (module/symbol
tables, import graph, call graph), the structural type engine with its
deep-immutability classification, and the per-function dataflow
summaries the project-wide passes consume."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.dataflow import summarize_function
from repro.analysis.project import (
    Project,
    TypeRef,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files: dict[str, str]) -> Project:
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return Project.load(paths)


def func_of(project: Project, module: str, name: str) -> ast.FunctionDef:
    return project.modules[module].functions[name]


# -- module naming and loading ------------------------------------------------


def test_module_name_walks_package_markers(tmp_path):
    (tmp_path / "pkg" / "sub").mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
    module = tmp_path / "pkg" / "sub" / "mod.py"
    module.write_text("x = 1\n")
    assert module_name_for(module) == "pkg.sub.mod"
    assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"


def test_module_outside_package_uses_stem(tmp_path):
    loose = tmp_path / "loose.py"
    loose.write_text("x = 1\n")
    assert module_name_for(loose) == "loose"


def test_load_skips_unparsable_files(tmp_path):
    project = make_project(tmp_path, {
        "good.py": "x = 1\n",
        "bad.py": "def broken(:\n",
    })
    assert "good" in project.modules
    assert "bad" not in project.modules


def test_module_indexes(tmp_path):
    project = make_project(tmp_path, {
        "mod.py": """\
            import json
            from os import path as p

            CACHE = {}
            LIMIT = 5

            class Widget:
                def spin(self):
                    pass

            def helper():
                pass
        """,
    })
    info = project.modules["mod"]
    assert set(info.classes) == {"Widget"}
    assert set(info.functions) == {"helper"}
    assert info.imports["json"] == "json"
    assert info.imports["p"] == "os.path"
    assert set(info.module_mutables) == {"CACHE"}
    assert "LIMIT" in info.module_bindings
    assert "spin" in info.class_methods("Widget")


# -- cross-module resolution and the import graph -----------------------------


CROSS = {
    "defs.py": """\
        class Thing:
            def poke(self):
                pass

        def make():
            return Thing()
    """,
    "user.py": """\
        from defs import Thing, make

        def build():
            return make()

        class Holder:
            def __init__(self):
                self.thing = Thing()

            def run(self):
                self.helper()
                self.thing.poke()

            def helper(self):
                pass
    """,
}


def test_resolve_imported_symbol(tmp_path):
    project = make_project(tmp_path, CROSS)
    user = project.modules["user"]
    mod, node = project.resolve(user, "Thing")
    assert mod.name == "defs" and isinstance(node, ast.ClassDef)
    assert project.resolve_class(user, "Thing") == (mod, node)
    assert project.resolve(user, "nonexistent") is None


def test_import_graph_is_project_internal(tmp_path):
    project = make_project(tmp_path, CROSS)
    assert project.import_graph["user"] == {"defs"}
    assert project.import_graph["defs"] == set()


def test_callees_plain_self_and_attribute(tmp_path):
    project = make_project(tmp_path, CROSS)
    user = project.modules["user"]
    build = user.functions["build"]
    names = {f.name for _, f, _ in project.callees(user, build)}
    assert names == {"make"}
    holder = user.classes["Holder"]
    run = user.class_methods("Holder")["run"]
    reached = {f.name for _, f, _ in project.callees(user, run, holder)}
    # self.helper() resolves on the owner; self.thing.poke() resolves
    # through the attribute's constructor class.
    assert reached == {"helper", "poke"}


# -- the type engine ----------------------------------------------------------


def eval_annotation(tmp_path, source: str, annotation: str) -> TypeRef:
    project = make_project(tmp_path, {
        "types_mod.py": source + f"\ndef probe(x: {annotation}):\n    pass\n",
    })
    module = project.modules["types_mod"]
    node = module.functions["probe"].args.args[0].annotation
    return project.types.of_annotation(node, module)


def test_annotation_pep604_union(tmp_path):
    ref = eval_annotation(tmp_path, "", "str | int | None")
    assert ref.kind == "union"
    assert {a.name for a in ref.args} == {"str", "int", "None"}


def test_annotation_string_and_optional(tmp_path):
    assert eval_annotation(tmp_path, "", "'str'").name == "str"
    ref = eval_annotation(tmp_path, "", "dict[str, int]")
    assert ref.kind == "dict"


def test_annotation_module_alias_expands(tmp_path):
    ref = eval_annotation(
        tmp_path, "Cell = str | int | None\n", "tuple[Cell, ...]"
    )
    assert ref.kind == "tuple"
    assert ref.args[0].kind == "union"


IMMUTABILITY = {
    "shapes.py": """\
        from dataclasses import dataclass

        Cell = str | int | float | bool | None

        @dataclass(frozen=True)
        class Point:
            x: int
            y: int

        @dataclass(frozen=True)
        class Path:
            points: tuple[Point, ...]

        @dataclass(frozen=True)
        class Bag:
            items: list

        @dataclass
        class Loose:
            x: int

        class ValueLike:
            def __init__(self, data):
                self._data = dict(data)

            def get(self, key):
                return self._data[key]

        class Mutant:
            def __init__(self):
                self._items = []

            def push(self, item):
                self._items.append(item)
    """,
}


def test_deep_immutability_classification(tmp_path):
    project = make_project(tmp_path, IMMUTABILITY)
    module = project.modules["shapes"]

    def immutable(annotation: str) -> bool:
        node = ast.parse(annotation, mode="eval").body
        ref = project.types.of_annotation(node, module)
        return project.types.is_deeply_immutable(ref, module)

    assert immutable("str")
    assert immutable("Cell")
    assert immutable("tuple[str, ...]")
    assert immutable("Point")           # frozen, all fields immutable
    assert immutable("Path")            # frozen, tuple of frozen
    assert immutable("ValueLike")       # externally immutable convention
    assert not immutable("list")
    assert not immutable("Bag")         # frozen but holds a list
    assert not immutable("Loose")       # not frozen
    assert not immutable("Mutant")      # mutates self outside __init__
    assert not immutable("Unresolved")  # unknown is never proven


def test_rowvalue_is_proven_immutable_on_real_tree():
    """The convention check must keep classifying the real ``RowValue``
    (all attribute writes confined to ``__init__``) as immutable — the
    ESC001 proven set depends on it."""
    files = list((REPO_ROOT / "src" / "repro" / "core").glob("*.py"))
    project = Project.load(files)
    module = project.find_module("repro.core.row")
    assert module is not None
    ref = TypeRef("class", f"{module.name}:RowValue")
    assert project.types.is_deeply_immutable(ref, module)


# -- dataflow summaries -------------------------------------------------------


def summarize(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    return summarize_function(func)


def test_summary_params_bindings_and_mutations():
    summary = summarize("""\
        def f(a, b: int, *args, **kwargs):
            local = [a]
            local.append(b)
            table[key] = 1
            total = 0
            total += b
            return local
    """)
    assert set(summary.params) == {"a", "b", "args", "kwargs"}
    assert summary.is_local("local") and summary.is_local("total")
    methods = {(m.target, m.method) for m in summary.mutations}
    assert ("local", "append") in methods
    assert ("table", "[]=") in methods
    assert ("total", "+=") in methods
    assert len(summary.returns) == 1
    assert summary.single_binding("local") is not None
    assert summary.single_binding("total") is None  # two bindings


def test_summary_self_writes_reads_and_free_names():
    summary = summarize("""\
        def f(self, x):
            self.count = x
            y = self.count + GLOBAL_TABLE[x]
            return y
    """)
    assert set(summary.self_writes) == {"count"}
    assert "count" in summary.self_reads
    assert "GLOBAL_TABLE" in summary.free_reads
    assert "y" not in summary.free_reads  # locals are not free


def test_summary_global_writes():
    summary = summarize("""\
        def f():
            global COUNTER
            COUNTER = 1
    """)
    assert summary.global_writes == {"COUNTER"}


def test_summary_loop_bindings_for_element_typing():
    summary = summarize("""\
        def f(rows):
            for row in rows:
                pass
            for key, value in rows:
                pass
    """)
    assert "row" in summary.loop_bindings
    assert summary.loop_unpack_bindings["key"][0][1] == 0
    assert summary.loop_unpack_bindings["value"][0][1] == 1


def test_summary_folds_nested_closures():
    summary = summarize("""\
        def f(pool):
            def intern(value):
                pool.append(value)
                return len(pool) - 1
            return intern("x")
    """)
    # The closure's mutation happens in f's frame.
    assert any(m.target == "pool" for m in summary.mutations)
    # ...but the closure's own params are not free reads of f.
    assert "value" not in summary.free_reads
