"""Cross-shard convergence property suite for the sharded backend.

The sharded multi-backend (:mod:`repro.server.shard`) has no global
sequencer: each shard commits the operations it owns unilaterally and
propagates them to its peers via batched, delta-compressed asymmetric
broadcasts.  These tests drive the *full* sharded assembly — N shard
servers behind the shard-oblivious router, worker clients with offline
buffering, seeded fault plans including shard-partition windows — and
assert that once every fault heals and the network quiesces:

- every shard replica and every client copy is identical to the
  primary's (rows, vote counts, vote histories);
- the globally-merged committed trace, replayed from scratch on a
  fresh single table (the single-backend oracle), reproduces the
  primary exactly — and so does an *alternate* linear extension of the
  per-shard commit logs, witnessing the order-independence the
  decentralised commit relies on;
- the Central Client's probable-row invariant holds at the primary;
- the network's per-link conservation law balances (sent = delivered +
  dropped + in flight on every link, including shard-to-shard links).

The ``shards=1`` equivalence gate pins the degenerate sharded
configuration to the plain :class:`BackendServer`: byte-identical
broadcast streams and identical end states on the same schedule, and an
identical seed-7 harness run — so the sharded code path cannot drift
from the single-server semantics the rest of the suite proves.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import WorkerClient
from repro.constraints import Template
from repro.constraints.probable import (
    probable_rows,
    probable_rows_from_scratch,
)
from repro.core import Column, DataType, OperationError, Schema, SchemaError
from repro.core.messages import TraceRecord
from repro.core.scoring import ThresholdScoring
from repro.net import (
    FaultInjector,
    FaultPlan,
    Network,
    ShardPartitionWindow,
    UniformLatency,
)
from repro.server import BackendServer, ShardedBackend, ShardExchangeError
from repro.server.shard import (
    decode_exchange,
    encode_exchange,
    shard_endpoint,
)
from repro.server.tracelog import replay_trace, trace_to_dicts
from repro.sim import RngStreams, Simulator

SCHEMA = Schema(
    name="Mini",
    columns=(
        Column("k", DataType.STRING),
        Column("a", DataType.INT),
        Column("b", DataType.STRING),
    ),
    primary_key=("k",),
)

VALUE_POOLS = {"k": ["x", "y", "z"], "a": [1, 2, 3], "b": ["p", "q"]}
SCORING = ThresholdScoring(2)
HORIZON = 10.0


def _perform(client: WorkerClient, op_kind, row_pick, column_pick, value_pick):
    """Attempt one random worker action; skipped when preconditions or
    interface vote policies reject it (as the UI would)."""
    try:
        row_ids = client.replica.table.row_ids()
        if not row_ids:
            return
        row_id = row_ids[row_pick % len(row_ids)]
        if op_kind == "fill":
            column = SCHEMA.column_names[column_pick % len(SCHEMA.column_names)]
            pool = VALUE_POOLS[column]
            client.fill(row_id, column, pool[value_pick % len(pool)])
        elif op_kind == "upvote":
            client.upvote(row_id)
        else:
            client.downvote(row_id)
    except (OperationError, SchemaError):
        return


def _shard_groups(n_shards: int) -> tuple[tuple[str, ...], ...]:
    """Each shard in its own group: partitions cut every exchange link."""
    return tuple((shard_endpoint(k),) for k in range(n_shards))


def _run_sharded_schedule(
    n_shards: int,
    num_clients: int,
    schedule,
    fault_seed: int,
    latency_seed: int,
    oplog_capacity: int = 512,
    plan: FaultPlan | None = None,
    sanitize: bool | None = None,
):
    """One full run: sharded rig, faults overlaid, ops driven, healed,
    drained to quiescence."""
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.01, 1.5),
        streams=RngStreams(latency_seed),
        sanitize=sanitize,
    )
    backend = ShardedBackend(
        sim,
        network,
        SCHEMA,
        SCORING,
        Template.cardinality(2),
        shards=n_shards,
        oplog_capacity=oplog_capacity,
    )
    names = [f"c{i}" for i in range(num_clients)]
    clients: dict[str, WorkerClient] = {}
    rng_streams = RngStreams(latency_seed)
    for name in names:
        client = WorkerClient(
            name, SCHEMA, SCORING, network, streams=rng_streams
        )
        client.bootstrap(backend.attach_client(name))
        clients[name] = client

    if plan is None:
        plan = FaultPlan.generate(
            random.Random(fault_seed),
            names,
            horizon=HORIZON,
            outage_prob=0.5,
            min_outage=0.5,
            max_outage=6.0,
            shard_groups=_shard_groups(n_shards) if n_shards > 1 else None,
            shard_partition_prob=0.6,
        )
    injector = FaultInjector(sim, network, plan)
    backend.bind_faults(injector)
    for name in plan.faulted_endpoints():
        client = clients.get(name)
        if client is None:
            continue  # shard endpoints are resynced via bind_faults
        injector.bind(
            name,
            on_disconnect=lambda c=client: (
                backend.detach_client(c.worker_id),
                c.disconnect(),
            ),
            on_reconnect=lambda c=client: c.reconnect(backend),
            on_requeue=client.requeue_unsent,
        )
    injector.install()
    backend.start()

    for at, client_pick, op_kind, row_pick, column_pick, value_pick in schedule:
        client = clients[names[client_pick % num_clients]]
        sim.schedule_at(
            at,
            lambda c=client, k=op_kind, r=row_pick, col=column_pick,
            v=value_pick: _perform(c, k, r, col, v),
        )
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    return backend, clients, injector, network


def _committed_records(committed, order_key=None):
    entries = committed if order_key is None else sorted(committed, key=order_key)
    return [
        TraceRecord(
            seq=index,
            timestamp=commit.timestamp,
            worker_id=commit.worker_id,
            message=message,
        )
        for index, (commit, message) in enumerate(entries)
    ]


def _assert_sharded_convergence(backend, clients, network):
    # Exchange drained completely: every shard offered its whole log to
    # every peer, and every peer applied it.
    assert backend.exchange_backlog() == 0
    assert backend.fully_exchanged()

    reference = backend.primary.replica.snapshot()
    reference_history = backend.primary.replica.table.history_snapshot()
    replicas = [shard.replica for shard in backend.shards] + [
        client.replica for client in clients.values()
    ]
    for replica in replicas:
        assert replica.snapshot() == reference
        assert replica.table.history_snapshot() == reference_history
        replica.table.check_vote_invariants()
    # PRI survived at the primary (the CC's host).
    assert backend.central.pri_holds()
    # Incremental probable views equal their from-scratch oracles.
    for replica in replicas:
        incremental = sorted(row.row_id for row in probable_rows(replica.table))
        oracle = sorted(
            row.row_id for row in probable_rows_from_scratch(replica.table)
        )
        assert incremental == oracle

    # Single-backend oracle: the merged committed trace replayed onto a
    # fresh table reproduces the primary exactly.
    committed = backend.committed_trace()
    replayed = replay_trace(SCHEMA, SCORING, _committed_records(committed))
    assert replayed.snapshot() == reference
    assert replayed.history_snapshot() == reference_history
    assert sorted(r.row_id for r in replayed.final_rows()) == sorted(
        r.row_id for r in backend.primary.replica.table.final_rows()
    )
    # Order-independence witness: a *different* linear extension of the
    # per-shard commit logs (all of shard 0's ops, then shard 1's, ...)
    # converges to the same state — the property decentralised commit
    # rests on.  Per-shard order is preserved; cross-shard order is not.
    alternate = replay_trace(
        SCHEMA,
        SCORING,
        _committed_records(
            committed, order_key=lambda e: (e[0].shard_id, e[0].lseq)
        ),
    )
    assert alternate.snapshot() == reference
    assert alternate.history_snapshot() == reference_history

    # Per-link conservation (includes the shard-to-shard links).
    network.check_accounting()


operation = st.tuples(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    st.integers(min_value=0, max_value=9),  # client pick
    st.sampled_from(["fill", "fill", "fill", "upvote", "downvote"]),
    st.integers(min_value=0, max_value=9),  # row pick
    st.integers(min_value=0, max_value=9),  # column pick
    st.integers(min_value=0, max_value=9),  # value pick
)


@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=30),
    n_shards=st.sampled_from([1, 2, 4]),
    num_clients=st.integers(min_value=2, max_value=5),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=1_000),
)
def test_sharded_convergence_under_random_fault_plans(
    schedule, n_shards, num_clients, fault_seed, latency_seed
):
    backend, clients, injector, network = _run_sharded_schedule(
        n_shards, num_clients, sorted(schedule), fault_seed, latency_seed
    )
    _assert_sharded_convergence(backend, clients, network)


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(
    schedule=st.lists(operation, min_size=3, max_size=25),
    n_shards=st.sampled_from([2, 4]),
    start=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    length=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    latency_seed=st.integers(min_value=0, max_value=500),
)
def test_sharded_convergence_under_explicit_partition_window(
    schedule, n_shards, start, length, latency_seed
):
    """A shard-partition window isolates every shard from its peers
    while both sides keep committing for their own clients; after the
    heal-time resync all replicas converge."""
    plan = FaultPlan(
        shard_partitions=(
            ShardPartitionWindow(
                _shard_groups(n_shards), start=start, end=start + length
            ),
        )
    )
    backend, clients, injector, network = _run_sharded_schedule(
        n_shards, 4, sorted(schedule), 0, latency_seed, plan=plan
    )
    assert any(e.kind == "shard-partition" for e in injector.events)
    assert any(e.kind == "shard-heal" for e in injector.events)
    _assert_sharded_convergence(backend, clients, network)


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(
    schedule=st.lists(operation, min_size=5, max_size=25),
    n_shards=st.sampled_from([2, 4]),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=500),
)
def test_sharded_convergence_with_tiny_oplog_and_client_churn(
    schedule, n_shards, fault_seed, latency_seed
):
    """Client rejoins forced onto the snapshot path (4-entry op-log)
    compose with shard partitions: bootstrap-from-snapshot must carry
    the superseded-id tombstones or resynced clients diverge."""
    backend, clients, injector, network = _run_sharded_schedule(
        n_shards, 3, sorted(schedule), fault_seed, latency_seed,
        oplog_capacity=4,
    )
    _assert_sharded_convergence(backend, clients, network)


# -- deterministic replay -----------------------------------------------------


_PINNED_SCHEDULE = sorted(
    (round(0.41 * i % 7.7, 3), i,
     ["fill", "fill", "upvote", "downvote"][i % 4], i * 3, i, i * 7)
    for i in range(25)
)


def _sharded_fingerprint(fault_seed: int):
    backend, clients, injector, network = _run_sharded_schedule(
        3, 4, _PINNED_SCHEDULE, fault_seed, latency_seed=5, oplog_capacity=16
    )
    committed_json = json.dumps(
        [
            (c.shard_id, c.lseq, c.worker_id, c.timestamp, m.to_dict())
            for c, m in backend.committed_trace()
        ],
        sort_keys=True,
    )
    trace_json = json.dumps(trace_to_dicts(backend.trace), sort_keys=True)
    events = [(e.time, e.kind, e.endpoint, e.purged) for e in injector.events]
    return committed_json, trace_json, events


def test_deterministic_replay_same_seed_same_commits():
    """Decentralised commit stays inside the DES's seedable-interleaving
    promise: two runs of one seed yield byte-identical committed traces,
    primary traces, and fault-event logs."""
    first = _sharded_fingerprint(fault_seed=11)
    second = _sharded_fingerprint(fault_seed=11)
    assert first[0] == second[0]  # byte-identical committed trace
    assert first[1] == second[1]  # byte-identical primary trace
    assert first[2] == second[2]  # identical fault schedule execution
    # A different fault seed genuinely changes the run.
    third = _sharded_fingerprint(fault_seed=12)
    assert first[2] != third[2]


# -- shards=1 equivalence gate ------------------------------------------------


def _drive_equivalence_schedule(make_backend):
    """Fixed multi-client schedule against *make_backend*'s rig, with an
    attached observer client recording the serialized broadcast stream
    (the pattern of ``tests/test_batch_equivalence.py``)."""
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.02, 0.4),
        streams=RngStreams(0),
    )
    backend = make_backend(sim, network)
    wire: list[tuple[str, str]] = []

    class Observer:
        def on_message(self, source, payload):
            wire.append((source, json.dumps(payload.to_dict(), sort_keys=True)))

    network.register("observer", Observer())
    backend.attach_client("observer")
    clients = []
    for i in range(3):
        client = WorkerClient(
            f"w{i}", SCHEMA, SCORING, network, streams=RngStreams(i)
        )
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()

    def empty_row(client):
        for row in client.replica.table.rows():
            if not dict(row.value.items()):
                return row.row_id
        return None

    rid = empty_row(clients[0])
    for column, value in {"k": "x", "a": 1, "b": "p"}.items():
        rid = clients[0].fill(rid, column, value)
    sim.run()
    clients[1].upvote(rid)
    clients[2].upvote(rid)
    sim.run()
    rid2 = empty_row(clients[1])
    for column, value in {"k": "y", "a": 2, "b": "q"}.items():
        rid2 = clients[1].fill(rid2, column, value)
    sim.run()
    clients[0].upvote(rid2)
    clients[2].downvote(rid2)
    sim.run()
    assert network.quiescent()
    trace_json = json.dumps(trace_to_dicts(backend.trace), sort_keys=True)
    return (
        wire,
        backend.replica.snapshot(),
        backend.replica.table.history_snapshot(),
        trace_json,
        backend.completed,
    )


def test_single_shard_wire_equivalent_to_plain_backend():
    """``ShardedBackend(shards=1)`` is *byte-identical* to the plain
    server: same broadcast stream (order and serialized payloads), same
    trace, same end state, same completion."""
    plain = _drive_equivalence_schedule(
        lambda sim, network: BackendServer(
            sim, network, SCHEMA, SCORING, Template.cardinality(2)
        )
    )
    sharded = _drive_equivalence_schedule(
        lambda sim, network: ShardedBackend(
            sim, network, SCHEMA, SCORING, Template.cardinality(2), shards=1
        )
    )
    assert sharded[0] == plain[0]
    assert sharded[1] == plain[1]
    assert sharded[2] == plain[2]
    assert sharded[3] == plain[3]
    assert sharded[4] == plain[4]
    assert len(plain[0]) > 0  # the observer really saw traffic


@pytest.mark.slow
def test_single_shard_harness_run_identical_to_plain():
    """The seed-7 section 6 harness run is identical under
    ``shards=1``: completion, duration, accuracy, and the final rows."""
    from repro.experiments.harness import CrowdFillExperiment, ExperimentConfig

    plain = CrowdFillExperiment(ExperimentConfig(seed=7)).run()
    sharded = CrowdFillExperiment(ExperimentConfig(seed=7, shards=1)).run()
    assert sharded.completed == plain.completed
    assert sharded.duration == plain.duration
    assert sharded.accuracy == plain.accuracy
    assert sharded.final_row_ids == plain.final_row_ids


# -- exchange protocol units --------------------------------------------------


def _scripted_messages():
    from repro.core.messages import (
        DownvoteMessage,
        InsertMessage,
        ReplaceMessage,
        UndoDownvoteMessage,
        UndoUpvoteMessage,
        UpvoteMessage,
    )
    from repro.core.row import RowValue

    value = RowValue({"k": "x", "a": 1, "b": "p"})
    partial = RowValue({"k": "y"})
    return [
        InsertMessage(row_id="w0#1"),
        ReplaceMessage(
            old_id="w0#1", new_id="w0#2", value=partial, column="k",
            filled_value="y",
        ),
        ReplaceMessage(
            old_id="w0#2", new_id="w0#3", value=value, column="a",
            filled_value=1,
        ),
        UpvoteMessage(value=value),
        UpvoteMessage(value=value, auto=True),
        DownvoteMessage(value=value),
        UndoUpvoteMessage(value=value),
        UndoDownvoteMessage(value=value),
    ]


def test_exchange_codec_round_trips_and_compresses():
    from repro.server.shard import ShardCommit

    messages = _scripted_messages()
    entries = [
        (ShardCommit(2, 7 + i, f"w{i % 2}", 1.5 + i), m)
        for i, m in enumerate(messages)
    ]
    batch = encode_exchange(2, 7, entries)
    assert batch.shard_id == 2
    assert batch.first_lseq == 7
    assert len(batch) == len(messages)
    # Dictionary compression: 6 value-bearing ops share 2 distinct
    # value-vectors; 8 ops share 2 distinct worker ids.
    assert len(batch.values) == 2
    assert len(batch.workers) == 2
    decoded = decode_exchange(batch)
    assert [m for _, m in decoded] == messages
    assert [c for c, _ in decoded] == [c for c, _ in entries]
    # Decoding builds fresh value objects — no aliasing with the batch.
    original_value = entries[3][1].value
    decoded_value = decoded[3][1].value
    assert decoded_value == original_value
    assert decoded_value is not original_value


def test_exchange_gap_raises_and_duplicates_skip():
    """A receiver tolerates duplicate prefixes (conservative resync)
    but treats a gap in a peer's stream as a protocol violation."""
    from repro.server.shard import ShardCommit

    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    backend = ShardedBackend(
        sim, network, SCHEMA, SCORING, Template.cardinality(1), shards=2
    )
    backend.start()
    sim.run()
    receiver = backend.shards[0]
    messages = _scripted_messages()[:2]
    entries = [
        (ShardCommit(1, i, "w0", 1.0 + i), m) for i, m in enumerate(messages)
    ]
    batch = encode_exchange(1, 0, entries)
    receiver._receive_exchange(batch)
    sim.run()
    assert receiver.received_from(1) == 2
    # The same batch again: pure duplicate, skipped by count.
    receiver._receive_exchange(batch)
    sim.run()
    assert receiver.received_from(1) == 2
    assert receiver.exchange_dup_ops == 2
    # A batch starting past the applied prefix is a gap.
    gap = encode_exchange(1, 5, [(ShardCommit(1, 5, "w0", 9.0), messages[0])])
    with pytest.raises(ShardExchangeError):
        receiver._receive_exchange(gap)


def test_router_routes_deterministically_and_covers_shards():
    """Routing is a pure function of the message (same message → same
    shard, across router instances), and the bucketing actually spreads
    key-groups across shards."""
    from repro.core.messages import ReplaceMessage, UpvoteMessage
    from repro.core.row import RowValue

    def build(n_shards):
        sim = Simulator()
        network = Network(sim, streams=RngStreams(0))
        return ShardedBackend(
            sim, network, SCHEMA, SCORING, Template.cardinality(1),
            shards=n_shards,
        )

    first, second = build(4), build(4)
    spread = set()
    for i in range(16):
        value = RowValue({"k": f"key{i}", "a": 1, "b": "p"})
        replace = ReplaceMessage(
            old_id=f"r{i}", new_id=f"r{i}x", value=value, column="b",
            filled_value="p",
        )
        vote = UpvoteMessage(value=value)
        a = first.router.shard_for(replace).shard_id
        assert second.router.shard_for(replace).shard_id == a
        # Votes on a key-complete value co-route with the key-group.
        assert first.router.shard_for(vote).shard_id == a
        spread.add(a)
    assert len(spread) > 1


def test_home_shard_assignment_is_stable_and_spread():
    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    backend = ShardedBackend(
        sim, network, SCHEMA, SCORING, Template.cardinality(1), shards=4
    )
    homes = {f"c{i}": backend.home_shard(f"c{i}").shard_id for i in range(12)}
    assert homes == {
        name: backend.home_shard(name).shard_id for name in homes
    }
    assert len(set(homes.values())) > 1
