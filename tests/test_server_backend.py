"""Unit tests for the back-end server: broadcast, trace, completion."""

import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)


def make_system(template=None, num_clients=2, **kwargs):
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.05),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    template = template or Template.cardinality(2)
    backend = BackendServer(sim, network, schema, SCORING, template, **kwargs)
    clients = []
    for i in range(num_clients):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=RngStreams(i))
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()
    return sim, network, backend, clients


def complete_row(client, row_id, values=None):
    values = values or {
        "name": "Messi", "nationality": "Argentina",
        "position": "FW", "caps": 83, "goals": 37,
    }
    for column, value in values.items():
        row_id = client.fill(row_id, column, value)
    return row_id


def test_start_initializes_central_client():
    _, _, backend, clients = make_system()
    assert len(backend.replica.table) == 2
    assert backend.central.pri_holds()


def test_broadcast_reaches_all_other_clients():
    sim, _, backend, clients = make_system(num_clients=3)
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    snapshots = {c.snapshot() for c in clients}
    snapshots.add(backend.replica.snapshot())
    snapshots.add(backend.central.replica.snapshot())
    assert len(snapshots) == 1


def test_trace_records_worker_and_cc_messages():
    sim, _, backend, clients = make_system()
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    workers = {record.worker_id for record in backend.trace}
    assert "w0" in workers
    assert "__central__" in workers
    assert backend.worker_trace()
    assert all(r.worker_id == "w0" for r in backend.worker_trace())


def test_trace_seq_strictly_increasing():
    sim, _, backend, clients = make_system()
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    seqs = [record.seq for record in backend.trace]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_trace_listener_sees_worker_records_only():
    sim, _, backend, clients = make_system()
    seen = []
    backend.add_trace_listener(seen.append)
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    assert seen
    assert all(record.worker_id == "w0" for record in seen)


def test_completion_detected():
    sim, _, backend, clients = make_system(
        template=Template.cardinality(1), num_clients=2
    )
    assert not backend.completed
    row_id = clients[0].replica.table.row_ids()[0]
    complete_row(clients[0], row_id)
    sim.run()
    assert not backend.completed  # one auto-upvote is not enough
    # The other worker upvotes the complete row.
    target = [
        r.row_id
        for r in clients[1].replica.table.rows()
        if r.value.is_complete(clients[1].schema.column_names)
    ][0]
    clients[1].upvote(target)
    sim.run()
    assert backend.completed
    assert backend.completion_time is not None


def test_on_complete_callback_fires_once():
    fired = []
    sim, _, backend, clients = make_system(
        template=Template.cardinality(1),
        on_complete=lambda: fired.append(1),
    )
    row_id = clients[0].replica.table.row_ids()[0]
    row_id = complete_row(clients[0], row_id)
    sim.run()
    target = [
        r.row_id
        for r in clients[1].replica.table.rows()
        if r.value.is_complete(clients[1].schema.column_names)
    ][0]
    clients[1].upvote(target)
    sim.run()
    assert fired == [1]


def test_attach_client_after_start_bootstraps_current_state():
    sim, network, backend, clients = make_system()
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    late = WorkerClient("late", soccer_player_schema(), SCORING, network,
                        streams=RngStreams(9))
    late.bootstrap(backend.attach_client("late"))
    assert late.snapshot() == backend.replica.snapshot()


def test_duplicate_attach_rejected():
    _, _, backend, _ = make_system()
    with pytest.raises(ValueError):
        backend.attach_client("w0")


def test_detach_stops_broadcast():
    sim, _, backend, clients = make_system()
    backend.detach_client("w1")
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    assert clients[1].snapshot() != backend.replica.snapshot()


def test_double_start_rejected():
    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    backend = BackendServer(
        sim, network, soccer_player_schema(), SCORING, Template.cardinality(1)
    )
    backend.start()
    with pytest.raises(RuntimeError):
        backend.start()


def test_detach_then_attach_round_trip_snapshot_path():
    """The pre-session path: a detached client may attach anew and gets
    a fresh snapshot identical to the master."""
    sim, network, backend, clients = make_system()
    backend.detach_client("w1")
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    assert clients[1].snapshot() != backend.replica.snapshot()
    late = WorkerClient("w1b", soccer_player_schema(), SCORING, network,
                        streams=RngStreams(7))
    late.bootstrap(backend.attach_client("w1b"))
    assert late.snapshot() == backend.replica.snapshot()


def test_reattach_resyncs_missed_broadcasts_incrementally():
    sim, _, backend, clients = make_system(num_clients=3)
    backend.detach_client("w1")
    clients[1].disconnect()
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    sim.run()
    assert clients[1].snapshot() != backend.replica.snapshot()
    kind = clients[1].reconnect(backend)
    sim.run()
    assert kind == "incremental"
    assert clients[1].snapshot() == backend.replica.snapshot()
    assert backend.session("w1").resyncs_incremental == 1


def test_reattach_replays_operations_buffered_while_detached():
    sim, _, backend, clients = make_system(num_clients=2)
    backend.detach_client("w1")
    clients[1].disconnect()
    # Both sides act during the outage.
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    other = clients[1].replica.table.row_ids()[1]
    clients[1].fill(other, "name", "Xavi")
    sim.run()
    assert clients[1].pending_ops == 1
    clients[1].reconnect(backend)
    sim.run()
    assert clients[1].pending_ops == 0
    assert clients[1].snapshot() == backend.replica.snapshot()
    assert clients[0].snapshot() == backend.replica.snapshot()
    names = {dict(r.value).get("name") for r in backend.replica.table.rows()}
    assert {"Messi", "Xavi"} <= names


def test_detach_with_messages_in_flight_toward_client():
    """Regression: messages already on the wire when the client detaches
    are still delivered (plain detach does not purge the network), the
    client's received count acknowledges them, and resync does not
    re-apply them."""
    sim, _, backend, clients = make_system(num_clients=2)
    row_id = clients[0].replica.table.row_ids()[0]
    clients[0].fill(row_id, "name", "Messi")
    # Run past the server's receipt (+0.05) so the broadcast to w1 is
    # on the wire, then detach before it lands (+0.10).
    sim.run(until=sim.now + 0.06)
    backend.detach_client("w1")
    clients[1].disconnect()
    sim.run()  # the in-flight broadcast lands anyway
    assert clients[1].snapshot() == backend.replica.snapshot()
    before = clients[1].replica.messages_processed
    kind = clients[1].reconnect(backend)
    sim.run()
    assert kind == "incremental"
    # Nothing was missed, so nothing was replayed or double-applied.
    assert clients[1].replica.messages_processed == before
    assert clients[1].snapshot() == backend.replica.snapshot()


def test_reattach_falls_back_to_snapshot_when_oplog_truncated():
    sim, network, backend, clients = make_system(num_clients=2,
                                                 oplog_capacity=2)
    backend.detach_client("w1")
    clients[1].disconnect()
    row_id = clients[0].replica.table.row_ids()[0]
    for column, value in [
        ("name", "Messi"), ("nationality", "Argentina"),
        ("position", "FW"), ("caps", 83), ("goals", 37),
    ]:
        row_id = clients[0].fill(row_id, column, value)
        sim.run()
    kind = clients[1].reconnect(backend)
    sim.run()
    assert kind == "snapshot"
    assert backend.session("w1").resyncs_snapshot == 1
    assert clients[1].snapshot() == backend.replica.snapshot()


def test_snapshot_resync_preserves_offline_operations():
    sim, _, backend, clients = make_system(num_clients=2, oplog_capacity=2)
    backend.detach_client("w1")
    clients[1].disconnect()
    mine = clients[1].replica.table.row_ids()[1]
    clients[1].fill(mine, "name", "Xavi")  # buffered offline
    row_id = clients[0].replica.table.row_ids()[0]
    for column, value in [
        ("name", "Messi"), ("nationality", "Argentina"),
        ("position", "FW"), ("caps", 83), ("goals", 37),
    ]:
        row_id = clients[0].fill(row_id, column, value)
        sim.run()
    kind = clients[1].reconnect(backend)
    sim.run()
    assert kind == "snapshot"
    assert clients[1].snapshot() == backend.replica.snapshot()
    names = {dict(r.value).get("name") for r in backend.replica.table.rows()}
    assert "Xavi" in names


def test_reattach_errors():
    sim, _, backend, clients = make_system(num_clients=2)
    with pytest.raises(ValueError):
        backend.reattach_client("ghost", 0)
    with pytest.raises(ValueError):
        backend.reattach_client("w1", 0)  # still attached
    backend.detach_client("w1")
    with pytest.raises(ValueError):
        backend.reattach_client("w1", 10_000)  # acked more than sent
    with pytest.raises(ValueError):
        backend.reattach_client("w1", -1)


def test_reconnect_while_connected_rejected():
    from repro.core import OperationError

    sim, _, backend, clients = make_system(num_clients=2)
    with pytest.raises(OperationError):
        clients[1].reconnect(backend)


def test_oplog_truncation_bound():
    from repro.server import OpLog
    from repro.core.messages import TraceRecord, InsertMessage

    log = OpLog(capacity=3)
    for seq in range(5):
        log.append(TraceRecord(seq=seq, timestamp=0.0, worker_id="w",
                               message=InsertMessage(row_id=f"r{seq}")))
    assert len(log) == 3
    assert log.first_seq == 2 and log.last_seq == 4
    assert log.truncated == 2
    assert not log.covers(1) and log.covers(2)
    assert log.get(1) is None
    assert [r.seq for r in log.entries_after(2)] == [3, 4]
    with pytest.raises(ValueError):
        OpLog(capacity=0)


def test_current_template_reflects_drops():
    sim, _, backend, clients = make_system(
        template=Template.from_values([{"nationality": "Brazil"}])
    )
    target = [
        r.row_id
        for r in clients[0].replica.table.rows()
        if dict(r.value).get("nationality") == "Brazil"
    ][0]
    clients[0].downvote(target)
    sim.run()
    clients[1].downvote(
        [r.row_id for r in clients[1].replica.table.rows()
         if dict(r.value).get("nationality") == "Brazil"][0]
    )
    sim.run()
    assert len(backend.current_template()) == 0
