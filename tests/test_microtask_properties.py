"""Property tests for the microtask coordinator under random behaviour."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RowValue
from repro.core.schema import soccer_player_schema
from repro.microtask import MicrotaskAnswer, MicrotaskCoordinator
from repro.microtask.coordinator import SlotPhase
from repro.microtask.tasks import EnumerateTask, FillTask, VerifyTask
from repro.sim import Simulator

SCHEMA = soccer_player_schema()
NAMES = ["Messi", "Xavi", "Neymar", "Iker"]
NATIONS = ["Argentina", "Spain", "Brazil"]
POSITIONS = ["GK", "DF", "MF", "FW"]

step = st.tuples(
    st.integers(min_value=0, max_value=4),  # worker pick
    st.integers(min_value=0, max_value=9),  # value pick
    st.booleans(),                          # skip?
    st.booleans(),                          # verify yes/no
)


def _answer_for(task, value_pick, skip, verdict):
    if skip and not isinstance(task, VerifyTask):
        return None
    if isinstance(task, EnumerateTask):
        return RowValue({
            "name": NAMES[value_pick % len(NAMES)],
            "nationality": NATIONS[value_pick % len(NATIONS)],
        })
    if isinstance(task, FillTask):
        if task.column == "position":
            return POSITIONS[value_pick % len(POSITIONS)]
        if task.column in ("caps", "goals"):
            return 50 + value_pick
        return f"v{value_pick}"
    return verdict


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(step, min_size=1, max_size=80),
    target_rows=st.integers(min_value=1, max_value=3),
)
def test_coordinator_invariants_under_random_answers(steps, target_rows):
    coordinator = MicrotaskCoordinator(
        Simulator(), SCHEMA, target_rows, skip_limit=3
    )
    for worker_pick, value_pick, skip, verdict in steps:
        worker_id = f"w{worker_pick}"
        task = coordinator.next_task(worker_id)
        if task is None:
            continue
        coordinator.submit(
            MicrotaskAnswer(
                task_id=task.task_id,
                worker_id=worker_id,
                payload=_answer_for(task, value_pick, skip, verdict),
            )
        )

    # Committed rows are complete, unique-keyed, and schema-valid.
    final = coordinator.final_rows()
    keys = [row.key(SCHEMA.key_columns) for row in final]
    assert len(set(keys)) == len(keys)
    for row in final:
        assert row.is_complete(SCHEMA.column_names)
    # Done slots are exactly the final rows.
    done = [s for s in coordinator.slots if s.phase is SlotPhase.DONE]
    assert len(done) == len(final)
    # Bookkeeping: answers accepted never exceed tasks issued plus
    # skip-reopenings (sanity of the assignment machinery).
    assert coordinator.stats.answers >= coordinator.stats.skips
    # No task is both open and in flight.
    open_ids = {task.task_id for task in coordinator._open}
    assert not open_ids & set(coordinator._in_flight)


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(step, min_size=10, max_size=80))
def test_verify_votes_bounded_per_row_version(steps):
    """No row version ever collects more than 3 votes (majority of
    three with short-cutting)."""
    coordinator = MicrotaskCoordinator(Simulator(), SCHEMA, 1, skip_limit=3)
    for worker_pick, value_pick, skip, verdict in steps:
        worker_id = f"w{worker_pick}"
        task = coordinator.next_task(worker_id)
        if task is None:
            continue
        coordinator.submit(
            MicrotaskAnswer(
                task_id=task.task_id,
                worker_id=worker_id,
                payload=_answer_for(task, value_pick, skip, verdict),
            )
        )
        slot = coordinator.slots[0]
        assert slot.yes_votes + slot.no_votes <= 3
