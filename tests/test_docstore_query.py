"""Unit tests for filter-document evaluation."""

import pytest

from repro.docstore import QueryError, matches_filter

DOC = {
    "name": "Messi",
    "caps": 83,
    "team": {"country": "Argentina", "rank": 1},
    "tags": ["fw", "captain"],
    "active": True,
}


def test_empty_filter_matches_everything():
    assert matches_filter(DOC, {})


def test_equality():
    assert matches_filter(DOC, {"name": "Messi"})
    assert not matches_filter(DOC, {"name": "Ronaldo"})


def test_missing_field_fails_equality():
    assert not matches_filter(DOC, {"ghost": 1})


def test_dotted_path():
    assert matches_filter(DOC, {"team.country": "Argentina"})
    assert not matches_filter(DOC, {"team.country": "Brazil"})
    assert not matches_filter(DOC, {"team.city.zip": 1})


def test_comparison_operators():
    assert matches_filter(DOC, {"caps": {"$gt": 80}})
    assert matches_filter(DOC, {"caps": {"$gte": 83}})
    assert matches_filter(DOC, {"caps": {"$lt": 100}})
    assert matches_filter(DOC, {"caps": {"$lte": 83}})
    assert not matches_filter(DOC, {"caps": {"$gt": 83}})


def test_eq_ne_operators():
    assert matches_filter(DOC, {"caps": {"$eq": 83}})
    assert matches_filter(DOC, {"caps": {"$ne": 84}})
    assert not matches_filter(DOC, {"caps": {"$ne": 83}})


def test_ne_matches_missing_field():
    assert matches_filter(DOC, {"ghost": {"$ne": 5}})


def test_range_on_missing_field_fails():
    assert not matches_filter(DOC, {"ghost": {"$gt": 0}})


def test_incomparable_types_never_match_ranges():
    assert not matches_filter(DOC, {"name": {"$gt": 5}})


def test_in_nin():
    assert matches_filter(DOC, {"name": {"$in": ["Messi", "Xavi"]}})
    assert not matches_filter(DOC, {"name": {"$in": ["Xavi"]}})
    assert matches_filter(DOC, {"name": {"$nin": ["Xavi"]}})
    assert not matches_filter(DOC, {"name": {"$nin": ["Messi"]}})


def test_exists():
    assert matches_filter(DOC, {"name": {"$exists": True}})
    assert matches_filter(DOC, {"ghost": {"$exists": False}})
    assert not matches_filter(DOC, {"ghost": {"$exists": True}})


def test_regex():
    assert matches_filter(DOC, {"name": {"$regex": "^Mes"}})
    assert not matches_filter(DOC, {"name": {"$regex": "^mes"}})
    assert not matches_filter(DOC, {"caps": {"$regex": "8"}})


def test_logical_and_or_nor():
    assert matches_filter(
        DOC, {"$and": [{"name": "Messi"}, {"caps": {"$gt": 50}}]}
    )
    assert matches_filter(DOC, {"$or": [{"name": "X"}, {"caps": 83}]})
    assert not matches_filter(DOC, {"$or": [{"name": "X"}, {"caps": 0}]})
    assert matches_filter(DOC, {"$nor": [{"name": "X"}, {"caps": 0}]})


def test_not_operator():
    assert matches_filter(DOC, {"caps": {"$not": {"$gt": 100}}})
    assert not matches_filter(DOC, {"caps": {"$not": {"$gt": 50}}})


def test_combined_operators_all_must_hold():
    assert matches_filter(DOC, {"caps": {"$gt": 80, "$lt": 90}})
    assert not matches_filter(DOC, {"caps": {"$gt": 80, "$lt": 82}})


def test_bool_not_equal_to_int():
    assert matches_filter(DOC, {"active": True})
    assert not matches_filter(DOC, {"active": 1})


def test_unknown_operator_raises():
    with pytest.raises(QueryError):
        matches_filter(DOC, {"caps": {"$near": 83}})


def test_unknown_toplevel_operator_raises():
    with pytest.raises(QueryError):
        matches_filter(DOC, {"$xor": []})


def test_malformed_logical_raises():
    with pytest.raises(QueryError):
        matches_filter(DOC, {"$and": "not-a-list"})


def test_malformed_in_raises():
    with pytest.raises(QueryError):
        matches_filter(DOC, {"caps": {"$in": 5}})


def test_subdocument_literal_equality():
    assert matches_filter(DOC, {"team": {"country": "Argentina", "rank": 1}})
    assert not matches_filter(DOC, {"team": {"country": "Argentina"}})


def test_list_equality():
    assert matches_filter(DOC, {"tags": ["fw", "captain"]})
