"""Property tests for the convergence theorem (paper section 2.4.2).

The theorem: starting from identical copies, after the system processes
an arbitrary set of concurrently generated messages and quiesces, the
server and every client hold identical candidate tables (rows AND vote
counts) and identical vote histories.

We drive a pure model-level client/server assembly (no Central Client,
no worker policies — just the formal model) with randomly generated
operations at random clients and random times over a network whose
per-link latencies deliberately shuffle cross-client arrival orders,
then assert convergence and the Lemma 3 vote invariants.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Column, DataType, OperationError, Replica, Schema
from repro.core.scoring import DefaultScoring, ThresholdScoring
from repro.net import Network, UniformLatency
from repro.sim import RngStreams, Simulator

SCHEMA = Schema(
    name="Mini",
    columns=(
        Column("k", DataType.STRING),
        Column("a", DataType.INT),
        Column("b", DataType.STRING),
    ),
    primary_key=("k",),
)

KEYS = ["x", "y", "z"]
INTS = [1, 2, 3]
STRS = ["p", "q"]


class _ModelServer:
    """The formal model's server: apply, then forward to all but origin."""

    def __init__(self, sim, network, scoring, client_names):
        self.replica = Replica("server", SCHEMA, scoring)
        self.network = network
        self.client_names = client_names

    def on_message(self, source, payload):
        self.replica.receive(payload)
        for name in self.client_names:
            if name != source:
                self.network.send("server", name, payload)


class _ModelClient:
    """A worker client at the model level: its replica plus the wire."""

    def __init__(self, name, sim, network, scoring):
        self.name = name
        self.replica = Replica(name, SCHEMA, scoring)
        self.network = network

    def on_message(self, source, payload):
        self.replica.receive(payload)

    def perform(self, op_kind, row_pick, column_pick, value_pick):
        """Attempt one random operation; skipped if preconditions fail."""
        try:
            if op_kind == "insert":
                message = self.replica.insert()
            else:
                row_ids = self.replica.table.row_ids()
                if not row_ids:
                    return
                row_id = row_ids[row_pick % len(row_ids)]
                if op_kind == "fill":
                    column = SCHEMA.column_names[
                        column_pick % len(SCHEMA.column_names)
                    ]
                    pools = {"k": KEYS, "a": INTS, "b": STRS}
                    value = pools[column][value_pick % len(pools[column])]
                    message = self.replica.fill(row_id, column, value)
                elif op_kind == "upvote":
                    message = self.replica.upvote(row_id)
                else:
                    message = self.replica.downvote(row_id)
        except OperationError:
            return
        self.network.send(self.name, "server", message)


def _run_schedule(num_clients, schedule, latency_seed, scoring):
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.01, 3.0),
        streams=RngStreams(latency_seed),
    )
    names = [f"c{i}" for i in range(num_clients)]
    server = _ModelServer(sim, network, scoring, names)
    network.register("server", server)
    clients = []
    for name in names:
        client = _ModelClient(name, sim, network, scoring)
        network.register(name, client)
        clients.append(client)

    for at, client_index, op_kind, row_pick, column_pick, value_pick in schedule:
        client = clients[client_index % num_clients]
        sim.schedule_at(
            at,
            lambda c=client, k=op_kind, r=row_pick, col=column_pick, v=value_pick: (
                c.perform(k, r, col, v)
            ),
        )
    sim.run()
    assert network.quiescent()
    return server, clients


operation = st.tuples(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.integers(min_value=0, max_value=9),  # client pick
    st.sampled_from(["insert", "fill", "fill", "fill", "upvote", "downvote"]),
    st.integers(min_value=0, max_value=9),  # row pick
    st.integers(min_value=0, max_value=9),  # column pick
    st.integers(min_value=0, max_value=9),  # value pick
)


@settings(max_examples=60, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=40),
    num_clients=st.integers(min_value=2, max_value=5),
    latency_seed=st.integers(min_value=0, max_value=1000),
)
def test_convergence_theorem(schedule, num_clients, latency_seed):
    server, clients = _run_schedule(
        num_clients, sorted(schedule), latency_seed, DefaultScoring()
    )
    reference = server.replica.snapshot()
    reference_history = server.replica.table.history_snapshot()
    for client in clients:
        assert client.replica.snapshot() == reference
        assert client.replica.table.history_snapshot() == reference_history
    # Lemma 3's invariants hold everywhere.
    server.replica.table.check_vote_invariants()
    for client in clients:
        client.replica.table.check_vote_invariants()


@settings(max_examples=20, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=30),
    latency_seed=st.integers(min_value=0, max_value=100),
)
def test_convergence_with_threshold_scoring(schedule, latency_seed):
    """Convergence is independent of the scoring function."""
    server, clients = _run_schedule(
        3, sorted(schedule), latency_seed, ThresholdScoring(2)
    )
    for client in clients:
        assert client.replica.snapshot() == server.replica.snapshot()


def test_same_column_concurrent_fill_yields_two_rows():
    """Section 2.4.1: same row, same column, different values — all
    copies end with two rows, one per value."""
    sim = Simulator()
    network = Network(sim, default_latency=UniformLatency(0.5, 1.5),
                      streams=RngStreams(4))
    server = _ModelServer(sim, network, DefaultScoring(), ["c0", "c1"])
    network.register("server", server)
    clients = [
        _ModelClient("c0", sim, network, DefaultScoring()),
        _ModelClient("c1", sim, network, DefaultScoring()),
    ]
    for client in clients:
        network.register(client.name, client)

    # Seed a shared row via c0.
    message = clients[0].replica.insert()
    network.send("c0", "server", message)
    sim.run()
    row_id = message.row_id

    def fill(client, value):
        reply = client.replica.fill(row_id, "k", value)
        network.send(client.name, "server", reply)

    sim.schedule(0.0, lambda: fill(clients[0], "x"))
    sim.schedule(0.0, lambda: fill(clients[1], "y"))
    sim.run()

    values = sorted(dict(r.value)["k"] for r in server.replica.table.rows())
    assert values == ["x", "y"]
    for client in clients:
        assert client.replica.snapshot() == server.replica.snapshot()


def test_different_column_concurrent_fill_paper_example():
    """Section 2.4.1's Messi example: fills on different columns of the
    same row produce two partial rows, not one merged (wrong) row."""
    sim = Simulator()
    network = Network(sim, default_latency=UniformLatency(0.5, 1.5),
                      streams=RngStreams(9))
    server = _ModelServer(sim, network, DefaultScoring(), ["c0", "c1"])
    network.register("server", server)
    clients = [
        _ModelClient("c0", sim, network, DefaultScoring()),
        _ModelClient("c1", sim, network, DefaultScoring()),
    ]
    for client in clients:
        network.register(client.name, client)

    message = clients[0].replica.insert()
    network.send("c0", "server", message)
    sim.run()
    row_id = message.row_id

    def fill(client, column, value):
        reply = client.replica.fill(row_id, column, value)
        network.send(client.name, "server", reply)

    sim.schedule(0.0, lambda: fill(clients[0], "k", "Messi"))
    sim.schedule(0.0, lambda: fill(clients[1], "a", 1))
    sim.run()

    values = [dict(r.value) for r in server.replica.table.rows()]
    assert {"k": "Messi"} in values
    assert {"a": 1} in values
    assert len(values) == 2  # never merged in place
    for client in clients:
        assert client.replica.snapshot() == server.replica.snapshot()


def test_reliable_delivery_assumption_is_necessary():
    """The theorem assumes reliable delivery.  Drop a single broadcast
    and the copies genuinely diverge — the assumption is load-bearing,
    not decorative."""
    sim = Simulator()
    network = Network(sim, default_latency=UniformLatency(0.1, 0.5),
                      streams=RngStreams(2))
    server = _ModelServer(sim, network, DefaultScoring(), ["c0", "c1"])
    network.register("server", server)
    clients = [
        _ModelClient("c0", sim, network, DefaultScoring()),
        _ModelClient("c1", sim, network, DefaultScoring()),
    ]
    for client in clients:
        network.register(client.name, client)

    message = clients[0].replica.insert()
    network.send("c0", "server", message)
    sim.run()

    # Sabotage: a black hole swallows c1's next broadcast, then the real
    # client is reattached — one lost message, nothing else changed.
    class _BlackHole:
        def on_message(self, source, payload):
            pass

    network.unregister("c1")
    network.register("c1", _BlackHole())
    fill = clients[0].replica.fill(message.row_id, "k", "x")
    network.send("c0", "server", fill)
    sim.run()
    network.unregister("c1")
    network.register("c1", clients[1])

    # More traffic after the loss: still in-order, still delivered.
    fill2 = clients[0].replica.fill(fill.new_id, "a", 1)
    network.send("c0", "server", fill2)
    sim.run()

    assert network.quiescent()
    assert clients[1].replica.snapshot() != server.replica.snapshot()
    assert clients[0].replica.snapshot() == server.replica.snapshot()
