"""Tests for the worker-view renderer and the live header estimates."""

import random

import pytest

from repro.client import WorkerClient
from repro.client.view import render_worker_view
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.net import ConstantLatency, Network
from repro.pay import AllocationScheme, CompensationEstimator
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    template = Template.cardinality(3)
    backend = BackendServer(sim, network, schema, SCORING, template)
    client = WorkerClient("w0", schema, SCORING, network,
                          streams=RngStreams(1))
    client.bootstrap(backend.attach_client("w0"))
    backend.start()
    sim.run()
    estimator = CompensationEstimator(
        schema, template, SCORING, budget=10.0,
        scheme=AllocationScheme.UNIFORM,
    )
    backend.add_trace_listener(
        lambda record: estimator.on_record(record, backend.replica.table)
    )
    return sim, backend, client, estimator


def test_render_shows_all_rows_and_headers(world):
    sim, backend, client, _ = world
    text = render_worker_view(client)
    for column in client.schema.column_names:
        assert column in text
    assert "votes" in text
    assert text.count("\n") >= 4  # header + rule + 3 rows


def test_render_respects_client_row_order(world):
    sim, backend, client, _ = world
    client.fill(client.replica.table.row_ids()[0], "name", "Messi")
    sim.run()
    text = render_worker_view(client)
    order = [row.row_id for row in client.visible_rows()]
    messi_index = next(
        i for i, row in enumerate(client.visible_rows())
        if "name" in row.value.filled_columns()
    )
    lines = text.splitlines()[2:]
    assert "Messi" in lines[messi_index]


def test_render_with_estimator_shows_dollar_hints(world):
    sim, backend, client, estimator = world
    text = render_worker_view(client, estimator)
    assert "$" in text
    assert "+$" in text and "/-$" in text


def test_header_estimates_match_uniform_closed_form(world):
    sim, backend, client, estimator = world
    estimates = estimator.current_cell_estimates(backend.replica.table)
    # Uniform: b = B / (|C| + |U| + |D|) = 10 / (15 + 3 + 0).
    expected = 10.0 / (5 * 3 + (2 - 1) * 3)
    for column in client.schema.column_names:
        assert estimates[column] == pytest.approx(expected)
    up, down = estimator.current_vote_estimates(backend.replica.table)
    assert up == pytest.approx(expected)
    assert down == pytest.approx(expected)


def test_vote_affordances_reflect_policies(world):
    sim, backend, client, _ = world
    row_id = client.replica.table.row_ids()[0]
    for column, value in {
        "name": "Messi", "nationality": "Argentina",
        "position": "FW", "caps": 83, "goals": 37,
    }.items():
        row_id = client.fill(row_id, column, value)
    sim.run()
    text = render_worker_view(client)
    # The worker auto-upvoted its completed row: no vote affordance on it.
    complete_line = next(
        line for line in text.splitlines() if "Messi" in line
    )
    assert "▲" not in complete_line
    assert "▼" not in complete_line
    # Empty rows offer no vote buttons either (nothing to assess).
    empty_line = text.splitlines()[-1]
    assert "▲" not in empty_line


def test_max_rows_truncation(world):
    sim, backend, client, _ = world
    text = render_worker_view(client, max_rows=1)
    assert len(text.splitlines()) == 3


def test_zero_budget_estimates(world):
    sim, backend, client, _ = world
    zero = CompensationEstimator(
        client.schema, Template.cardinality(3), SCORING, budget=0.0,
        scheme=AllocationScheme.UNIFORM,
    )
    estimates = zero.current_cell_estimates(backend.replica.table)
    assert all(v == 0.0 for v in estimates.values())
