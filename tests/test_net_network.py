"""Unit tests for the simulated network."""

import random

import pytest

from repro.net import ConstantLatency, LogNormalLatency, Network, UniformLatency
from repro.sim import RngStreams, Simulator


class Sink:
    def __init__(self):
        self.got = []

    def on_message(self, source, payload):
        self.got.append((source, payload))


def make_net(latency=None, seed=0):
    sim = Simulator()
    net = Network(sim, default_latency=latency, streams=RngStreams(seed))
    return sim, net


def test_basic_delivery():
    sim, net = make_net()
    sink = Sink()
    net.register("a", Sink())
    net.register("b", sink)
    net.send("a", "b", {"hello": 1})
    sim.run()
    assert sink.got == [("a", {"hello": 1})]


def test_unknown_source_rejected():
    sim, net = make_net()
    net.register("b", Sink())
    with pytest.raises(KeyError):
        net.send("ghost", "b", "x")


def test_unknown_destination_rejected():
    sim, net = make_net()
    net.register("a", Sink())
    with pytest.raises(KeyError):
        net.send("a", "ghost", "x")


def test_duplicate_registration_rejected():
    _, net = make_net()
    net.register("a", Sink())
    with pytest.raises(ValueError):
        net.register("a", Sink())


def test_in_order_delivery_under_random_latency():
    """The formal model's key assumption: per-link FIFO even when later
    messages sample smaller latencies."""
    sim, net = make_net(latency=UniformLatency(0.01, 5.0), seed=3)
    sink = Sink()
    net.register("a", Sink())
    net.register("b", sink)
    for i in range(200):
        net.send("a", "b", i)
    sim.run()
    assert [payload for _, payload in sink.got] == list(range(200))


def test_order_preserved_across_interleaved_sends():
    sim, net = make_net(latency=UniformLatency(0.0, 2.0), seed=1)
    sink = Sink()
    net.register("a", Sink())
    net.register("b", Sink())
    net.register("c", sink)
    sequence = []

    def send_round(i):
        net.send("a", "c", ("a", i))
        net.send("b", "c", ("b", i))
        sequence.append(i)

    for i in range(20):
        sim.schedule(i * 0.1, lambda i=i: send_round(i))
    sim.run()
    # Per-source subsequences must be in order.
    from_a = [p[1] for s, p in sink.got if p[0] == "a"]
    from_b = [p[1] for s, p in sink.got if p[0] == "b"]
    assert from_a == sorted(from_a)
    assert from_b == sorted(from_b)


def test_latency_delays_delivery():
    sim, net = make_net(latency=ConstantLatency(1.5))
    sink = Sink()
    net.register("a", Sink())
    net.register("b", sink)
    net.send("a", "b", "x")
    sim.run(until=1.0)
    assert sink.got == []
    sim.run()
    assert sink.got == [("a", "x")]
    assert sim.now == pytest.approx(1.5)


def test_per_link_latency_override():
    sim, net = make_net(latency=ConstantLatency(10.0))
    fast_sink, slow_sink = Sink(), Sink()
    net.register("a", Sink())
    net.register("fast", fast_sink)
    net.register("slow", slow_sink)
    net.set_link_latency("a", "fast", ConstantLatency(0.1))
    net.send("a", "fast", 1)
    net.send("a", "slow", 2)
    sim.run(until=1.0)
    assert fast_sink.got and not slow_sink.got


def test_stats_and_quiescence():
    sim, net = make_net()
    net.register("a", Sink())
    net.register("b", Sink())
    assert net.quiescent()
    net.send("a", "b", "x")
    assert not net.quiescent()
    assert net.stats.messages_sent == 1
    net.check_accounting()
    sim.run()
    assert net.quiescent()
    assert net.stats.messages_delivered == 1
    assert net.stats.per_link_sent[("a", "b")] == 1
    net.check_accounting()


def test_unregistered_destination_drops_in_flight():
    sim, net = make_net(latency=ConstantLatency(1.0))
    sink = Sink()
    net.register("a", Sink())
    net.register("b", sink)
    net.send("a", "b", "x")
    net.unregister("b")
    assert not net.quiescent()
    sim.run()
    assert sink.got == []
    # Dropped, not delivered — and the accounting invariant holds
    # (in_flight = sent - delivered - dropped re-reaches zero).
    assert net.stats.messages_delivered == 0
    assert net.stats.messages_dropped == 1
    net.check_accounting()
    assert net.quiescent()


class _DropAll:
    """Fault filter that drops every message."""

    def should_drop(self, source, destination):
        return True

    def latency_factor(self, source, destination):
        return 1.0


class _SlowDown:
    """Fault filter that stretches latency without dropping."""

    def __init__(self, factor):
        self.factor = factor

    def should_drop(self, source, destination):
        return False

    def latency_factor(self, source, destination):
        return self.factor


def test_fault_filter_drop_keeps_accounting_quiescent():
    sim, net = make_net()
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    net.set_fault_filter(_DropAll())
    for _ in range(5):
        net.send("a", "b", "x")
    # Dropped at send time: never in flight, quiescence never wedges.
    assert net.stats.messages_sent == 5
    assert net.stats.messages_dropped == 5
    net.check_accounting()
    assert net.quiescent()
    sim.run()
    assert sink.got == []


def test_fault_filter_latency_factor_preserves_fifo():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    slow = _SlowDown(10.0)
    net.set_fault_filter(slow)
    net.send("a", "b", 0)  # delivers at 10.0
    slow.factor = 1.0
    net.send("a", "b", 1)  # would deliver at 1.0; clamped behind msg 0
    sim.run()
    assert [p for _, p in sink.got] == [0, 1]
    assert sim.now >= 10.0


def test_drop_in_flight_purges_and_returns_messages():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.register("a", Sink())
    net.register("server", Sink())
    b = Sink()
    net.register("b", b)
    net.send("b", "server", "out1")
    net.send("b", "server", "out2")
    net.send("server", "b", "in1")
    net.send("a", "server", "unrelated")
    dropped = net.drop_in_flight("b")
    assert [(d.source, d.destination, d.payload) for d in dropped] == [
        ("b", "server", "out1"),
        ("b", "server", "out2"),
        ("server", "b", "in1"),
    ]
    assert net.stats.messages_dropped == 3
    net.check_accounting()
    assert not net.quiescent()  # the unrelated message is still flying
    sim.run()
    assert net.quiescent()
    net.check_accounting()
    assert net.stats.messages_delivered == 1
    assert b.got == []


def test_drop_in_flight_then_reuse_link():
    sim, net = make_net(latency=ConstantLatency(0.5))
    net.register("a", Sink())
    sink = Sink()
    net.register("b", sink)
    net.send("a", "b", "lost")
    net.drop_in_flight("b")
    net.send("a", "b", "kept")
    sim.run()
    assert [p for _, p in sink.got] == ["kept"]
    assert net.quiescent()


def test_endpoints_listing():
    _, net = make_net()
    net.register("b", Sink())
    net.register("a", Sink())
    assert net.endpoints() == ["a", "b"]


def test_lognormal_latency_positive():
    rng = random.Random(0)
    model = LogNormalLatency(median=0.1, sigma=1.0)
    assert all(model.sample(rng) > 0 for _ in range(100))


def test_latency_validation():
    with pytest.raises(ValueError):
        ConstantLatency(-1)
    with pytest.raises(ValueError):
        UniformLatency(2, 1)
    with pytest.raises(ValueError):
        LogNormalLatency(median=0)
