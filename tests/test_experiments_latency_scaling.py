"""Tests for the A6 latency-sensitivity and A8 worker-scaling drivers."""

import pytest

from repro.experiments.comparison import run_worker_scaling
from repro.experiments.harness import ExperimentConfig
from repro.experiments.latency import LatencyPoint, LatencyReport, run_latency_sweep


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig(seed=7, num_workers=3, target_rows=5)


class TestLatencySweep:
    def test_sweep_completes_at_every_latency(self, small_config):
        report = run_latency_sweep(
            seed=7, latencies=(0.05, 2.0), base_config=small_config
        )
        assert len(report.points) == 2
        for point in report.points:
            assert point.completed
            assert point.accuracy >= 0.8

    def test_format_table(self, small_config):
        report = run_latency_sweep(
            seed=7, latencies=(0.05,), base_config=small_config
        )
        text = report.format_table()
        assert "A6" in text and "0.05" in text

    def test_staleness_metric_logic(self):
        fast = LatencyPoint(0.05, True, 100.0, 10, 1.0, 22)
        slow = LatencyPoint(5.0, True, 200.0, 5, 1.0, 40)
        assert LatencyReport(seed=0, points=[fast, slow]).staleness_costs_grow()
        assert not LatencyReport(
            seed=0, points=[slow, fast]
        ).staleness_costs_grow()

    def test_staleness_metric_incomplete_run(self):
        fast = LatencyPoint(0.05, True, 100.0, 10, 1.0, 22)
        dead = LatencyPoint(5.0, False, None, 5, 1.0, 40)
        assert not LatencyReport(
            seed=0, points=[fast, dead]
        ).staleness_costs_grow()


class TestWorkerScaling:
    def test_scaling_runs_both_approaches(self, small_config):
        report = run_worker_scaling(
            seed=7, worker_counts=(3, 5), base_config=small_config
        )
        assert len(report.table_filling_times) == 2
        assert len(report.microtask_times) == 2
        assert all(t > 0 for t in report.table_filling_times)
        assert all(t > 0 for t in report.microtask_times)

    def test_more_workers_do_not_slow_table_filling(self, small_config):
        report = run_worker_scaling(
            seed=7, worker_counts=(3, 8), base_config=small_config
        )
        assert (
            report.table_filling_times[1]
            <= report.table_filling_times[0] * 1.3
        )

    def test_format_table(self, small_config):
        report = run_worker_scaling(
            seed=7, worker_counts=(3,), base_config=small_config
        )
        text = report.format_table()
        assert "A8" in text and "microtask" in text


class TestQualityTradeoff:
    def test_grid_runs_and_reports(self):
        from repro.experiments import run_quality_tradeoff
        from repro.experiments.harness import ExperimentConfig

        base = ExperimentConfig(seed=7, num_workers=4, target_rows=5)
        report = run_quality_tradeoff(
            seed=7, fill_accuracies=(0.98,), min_votes_options=(1, 2),
            base_config=base,
        )
        assert len(report.points) == 2
        text = report.format_table()
        assert "A9" in text and "min_votes" in text
        solo = report.point(1, 0.98)
        majority = report.point(2, 0.98)
        assert solo.completed and majority.completed
        with pytest.raises(KeyError):
            report.point(9, 0.5)

    def test_accuracy_insensitivity_and_vote_cost(self):
        from repro.experiments import run_quality_tradeoff
        from repro.experiments.harness import ExperimentConfig

        base = ExperimentConfig(seed=19, num_workers=4, target_rows=6)
        report = run_quality_tradeoff(
            seed=19, fill_accuracies=(0.90,), base_config=base,
        )
        # Downvote policing keeps accuracy threshold-insensitive.
        assert report.accuracy_insensitive_to_threshold(0.90, tolerance=0.2)


class TestDomainSweep:
    def test_all_domains_complete(self):
        from repro.experiments import run_domain_sweep
        from repro.experiments.harness import ExperimentConfig

        base = ExperimentConfig(seed=7, num_workers=4, universe_size=200)
        report = run_domain_sweep(
            seed=7, table_sizes=(5,), base_config=base,
        )
        assert len(report.points) == 3
        assert report.all_complete_and_accurate()
        text = report.format_table()
        assert "A10" in text
        for domain in ("soccer", "cities", "movies"):
            assert domain in text

    def test_unknown_domain_rejected(self):
        from repro.experiments import CrowdFillExperiment
        from repro.experiments.harness import ExperimentConfig

        config = ExperimentConfig(seed=1, domain="weather")  # type: ignore
        with pytest.raises(ValueError):
            CrowdFillExperiment(config).run()
