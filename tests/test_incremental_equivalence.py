"""Property tests: the incremental index-backed views never diverge.

The candidate table maintains its probable set, final table, and row
scores incrementally (dirty key groups only).  These tests drive one
long-lived table through arbitrary interleaved message sequences —
querying the derived views at random points so the dirty tracking is
exercised mid-stream, not just once at the end — and assert that every
view exactly equals a from-scratch recomputation on a fresh replica fed
the same messages.  The same sequences also exercise the consumer-delta
APIs (`drain_dirty` / `drain_probable_delta`): a consumer that applies
the drained deltas must track the true probable set and final table.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.probable import probable_rows, probable_rows_from_scratch
from repro.core import Column, DataType, Schema
from repro.core.row import RowValue
from repro.core.scoring import ThresholdScoring
from repro.core.table import CandidateTable

SCHEMA = Schema(
    name="Mini",
    columns=(
        Column("k", DataType.STRING),
        Column("a", DataType.INT),
        Column("b", DataType.STRING),
    ),
    primary_key=("k",),
)

KEYS = ["x", "y", "z"]
INTS = [1, 2]
STRS = ["p", "q"]

_values = st.builds(
    lambda k, a, b: RowValue(
        {
            name: value
            for name, value in (("k", k), ("a", a), ("b", b))
            if value is not None
        }
    ),
    st.sampled_from(KEYS + [None]),
    st.sampled_from(INTS + [None]),
    st.sampled_from(STRS + [None]),
)

# One operation: (kind, value-ish payload).  Replace targets and row ids
# are resolved against the table as the sequence is applied, so the same
# abstract sequence is replayable on any copy.
_operations = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert", "replace", "upvote", "downvote",
             "undo_upvote", "undo_downvote", "query"]
        ),
        _values,
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=40,
)


def _apply(table, concrete_ops):
    """Replay an already-concretized message sequence."""
    for op, payload in concrete_ops:
        getattr(table, f"apply_{op}")(*payload)


def _concretize(ops):
    """Turn abstract ops into a replayable message sequence.

    Runs the sequence once on a scratch table to resolve replace
    targets (which depend on which rows exist at that point) and to
    drop undo messages that would be rejected.
    """
    scratch = CandidateTable(SCHEMA, ThresholdScoring(2))
    concrete = []
    counter = 0
    query_points = []
    for kind, value, pick in ops:
        if kind == "query":
            query_points.append(len(concrete))
            continue
        if kind == "insert":
            counter += 1
            message = ("insert", (f"r{counter}",))
        elif kind == "replace":
            ids = scratch.row_ids()
            old_id = ids[pick % len(ids)] if ids and pick % 3 else f"ghost{pick}"
            counter += 1
            message = ("replace", (old_id, f"r{counter}", value))
        elif kind in ("undo_upvote", "undo_downvote"):
            history = (
                scratch.upvote_history
                if kind == "undo_upvote"
                else scratch.downvote_history
            )
            if history.get(value, 0) <= 0:
                continue
            message = (kind, (value,))
        else:
            message = (kind, (value,))
        _apply(scratch, [message])
        concrete.append(message)
    return concrete, query_points


def _from_scratch_views(concrete_ops):
    """Fresh replica fed the same messages, queried exactly once."""
    fresh = CandidateTable(SCHEMA, ThresholdScoring(2))
    _apply(fresh, concrete_ops)
    return fresh


def _assert_views_match(incremental, concrete_so_far):
    fresh = _from_scratch_views(concrete_so_far)
    # Probable set: incremental view == full-scan oracle on both copies.
    oracle = [r.row_id for r in probable_rows_from_scratch(fresh)]
    assert [r.row_id for r in probable_rows(incremental)] == oracle
    assert [r.row_id for r in probable_rows_from_scratch(incremental)] == oracle
    for row_id in incremental.row_ids():
        assert incremental.is_row_probable(row_id) == (row_id in set(oracle))
    # Final table.
    assert [r.snapshot() for r in incremental.final_rows()] == [
        r.snapshot() for r in fresh.final_rows()
    ]
    # Cached scores equal recomputed scores.
    for row in incremental.rows():
        assert incremental.score(row) == fresh.scoring.score(
            row.upvotes, row.downvotes
        )
    # Snapshots (rows + vote counts) and Lemma-3 invariants.
    assert incremental.snapshot() == fresh.snapshot()
    incremental.check_vote_invariants()


@settings(max_examples=60)
@given(_operations)
def test_incremental_views_equal_from_scratch(ops):
    concrete, query_points = _concretize(ops)
    table = CandidateTable(SCHEMA, ThresholdScoring(2))
    position = 0
    for point in query_points + [len(concrete)]:
        _apply(table, concrete[position:point])
        position = point
        _assert_views_match(table, concrete[:position])


@settings(max_examples=40)
@given(_operations)
def test_consumer_deltas_track_true_views(ops):
    concrete, query_points = _concretize(ops)
    table = CandidateTable(SCHEMA, ThresholdScoring(2))
    probable_token = table.register_probable_consumer()
    dirty_token = table.register_dirty_consumer()
    tracked_probable: set[str] = set()
    tracked_final: dict[tuple, str] = {}
    position = 0
    for point in query_points + [len(concrete)]:
        _apply(table, concrete[position:point])
        position = point

        added, removed, full = table.drain_probable_delta(probable_token)
        if full:
            tracked_probable = {r.row_id for r in table.probable_rows()}
        else:
            for row_id in removed:
                tracked_probable.discard(row_id)
            for row in added:
                tracked_probable.add(row.row_id)
        assert tracked_probable == {r.row_id for r in table.probable_rows()}

        delta = table.drain_dirty(dirty_token)
        if delta.full:
            tracked_final = {
                key: row.row_id for key, row in table.final_groups()
            }
        else:
            for key in delta.keys:
                final = table.final_in_group(key)
                if final is None:
                    tracked_final.pop(key, None)
                else:
                    tracked_final[key] = final.row_id
        assert tracked_final == {
            key: row.row_id for key, row in table.final_groups()
        }
