"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_help_lists_commands(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for command in ("run", "effectiveness", "compensation", "mape",
                    "adversaries"):
        assert command in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command_prints_final_table(capsys):
    code = main(["run", "--seed", "3", "--workers", "3", "--rows", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "completed in" in out
    assert "payouts:" in out
    assert out.count("'name'") == 4


def test_run_with_recommender(capsys):
    code = main(["run", "--seed", "3", "--workers", "3", "--rows", "4",
                 "--recommender"])
    assert code == 0
    assert "completed in" in capsys.readouterr().out


def test_effectiveness_command(capsys):
    assert main(["effectiveness", "--seed", "7"]) == 0
    assert "E1:" in capsys.readouterr().out


def test_compensation_command_scheme_choice(capsys):
    assert main(["compensation", "--seed", "7", "--scheme", "uniform"]) == 0
    assert "scheme=uniform" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main(["compare", "--seed", "7"]) == 0
    assert "E5:" in capsys.readouterr().out


def test_estimates_command(capsys):
    assert main(["estimates", "--seed", "7"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_earning_rate_command(capsys):
    assert main(["earning-rate", "--seed", "7"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_mape_command_small(capsys):
    assert main(["mape", "--seeds", "3,7"]) == 0
    out = capsys.readouterr().out
    assert "E4:" in out and "2 runs" in out


def test_adversaries_command(capsys):
    assert main(["adversaries", "--kind", "copier", "--seed", "7",
                 "--counts", "0,1"]) == 0
    assert "copier" in capsys.readouterr().out


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["compensation", "--scheme", "martian"])


def test_vs_microtask_command(capsys):
    assert main(["vs-microtask", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "E9:" in out and "microtask" in out


def test_latency_command(capsys):
    assert main(["latency", "--seed", "7"]) == 0
    assert "A6:" in capsys.readouterr().out


def test_scaling_command(capsys):
    assert main(["scaling", "--seed", "7", "--counts", "3,5"]) == 0
    assert "A8:" in capsys.readouterr().out


def test_report_quick_to_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main(["report", "--seed", "7", "--quick", "--out", str(out)]) == 0
    text = out.read_text()
    assert "# CrowdFill reproduction" in text
    assert "E1 — overall effectiveness" in text
    assert "Figure 5" in text
    # Quick mode skips the sweeps.
    assert "E4" not in text
    assert "wrote" in capsys.readouterr().out


def test_report_quick_to_stdout(capsys):
    assert main(["report", "--seed", "7", "--quick"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_suggest_budget_command(capsys):
    assert main(["suggest-budget", "--rows", "10", "--wage", "9"]) == 0
    out = capsys.readouterr().out
    assert "suggested budget" in out and "$9.00/hour" in out


def test_suggest_budget_with_verification(capsys):
    assert main(["suggest-budget", "--rows", "5", "--wage", "6",
                 "--verify", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Realized hourly wages" in out


def test_quality_command(capsys):
    assert main(["quality", "--seed", "7"]) == 0
    assert "A9:" in capsys.readouterr().out


def test_domains_command(capsys):
    assert main(["domains", "--seed", "7"]) == 0
    assert "A10:" in capsys.readouterr().out


def test_cost_command(capsys):
    assert main(["cost", "--seed", "7", "--wage", "9"]) == 0
    assert "A11:" in capsys.readouterr().out


def test_run_with_fault_plan_crash_windows(tmp_path, capsys):
    """`repro run --shards N --fault-plan plan.json` loads a serialized
    plan (the `to_dict` wire form round-trips through the CLI) and
    reports the injected fault events."""
    import json

    from repro.net import FaultPlan, ShardCrashWindow
    from repro.server.shard import shard_endpoint

    plan = FaultPlan(
        crashes=(ShardCrashWindow(shard_endpoint(1), 1.0, 3.0),)
    )
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps(plan.to_dict()))
    code = main(["run", "--seed", "3", "--workers", "3", "--rows", "4",
                 "--shards", "2", "--fault-plan", str(plan_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault events injected:" in out
    events = int(out.split("fault events injected:")[1].split()[0])
    assert events >= 2  # the crash and its restart both fired
    assert out.count("'name'") == 4  # the run still converged


def test_run_fault_plan_crashes_require_shards(tmp_path):
    """Crash windows without --shards are rejected: only the sharded
    backend has a WAL to recover from."""
    import json

    from repro.net import FaultPlan, ShardCrashWindow
    from repro.server.shard import shard_endpoint

    plan = FaultPlan(
        crashes=(ShardCrashWindow(shard_endpoint(0), 1.0, 2.0),)
    )
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps(plan.to_dict()))
    with pytest.raises(ValueError, match="crash windows need a sharded"):
        main(["run", "--seed", "3", "--workers", "3", "--rows", "4",
              "--fault-plan", str(plan_file)])
