"""Unit tests for trace persistence and replay."""

import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.docstore import Database
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.server.tracelog import (
    load_trace,
    replay_trace,
    store_trace,
    trace_from_dicts,
    trace_to_dicts,
)
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)


@pytest.fixture
def finished_run():
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.02),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    # Cardinality 3: one template row stays an untouched CC insert, so
    # the master is NOT reconstructible from worker messages alone.
    backend = BackendServer(
        sim, network, schema, SCORING, Template.cardinality(3)
    )
    clients = []
    for i in range(2):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=RngStreams(i))
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()

    values = {"name": "Messi", "nationality": "Argentina",
              "position": "FW", "caps": 83, "goals": 37}
    row_id = clients[0].replica.table.row_ids()[0]
    for column, value in values.items():
        row_id = clients[0].fill(row_id, column, value)
    sim.run()
    clients[1].upvote(row_id)
    partial = next(
        r.row_id for r in clients[1].replica.table.rows()
        if "nationality" not in r.value.filled_columns()
    )
    clients[1].fill(partial, "nationality", "Brazil")
    sim.run()
    clients[0].downvote(
        [r.row_id for r in clients[0].replica.table.rows()
         if dict(r.value) == {"nationality": "Brazil"}][0]
    )
    sim.run()
    return backend


def test_dict_roundtrip_preserves_records(finished_run):
    trace = finished_run.trace
    restored = trace_from_dicts(trace_to_dicts(trace))
    assert restored == trace


def test_from_dicts_restores_seq_order(finished_run):
    documents = trace_to_dicts(finished_run.trace)
    shuffled = list(reversed(documents))
    restored = trace_from_dicts(shuffled)
    assert [r.seq for r in restored] == sorted(r.seq for r in restored)


def test_replay_reconstructs_master_exactly(finished_run):
    backend = finished_run
    replayed = replay_trace(
        backend.schema, SCORING, backend.trace
    )
    assert replayed.snapshot() == backend.replica.table.snapshot()
    assert (
        replayed.history_snapshot()
        == backend.replica.table.history_snapshot()
    )
    assert [dict(v) for v in replayed.final_table()] == [
        dict(v) for v in backend.replica.table.final_table()
    ]


def test_replay_of_worker_trace_only_differs(finished_run):
    """Without CC's inserts the replay cannot reconstruct the table —
    the full trace is what bookkeeping must keep."""
    backend = finished_run
    partial = replay_trace(backend.schema, SCORING, backend.worker_trace())
    assert partial.snapshot() != backend.replica.table.snapshot()


def test_store_and_load_roundtrip(finished_run):
    db = Database("bookkeeping")
    written = store_trace(db, "traces", "run-1", finished_run.trace)
    assert written == len(finished_run.trace)
    restored = load_trace(db, "traces", "run-1")
    assert restored == finished_run.trace


def test_store_replaces_previous_run(finished_run):
    db = Database("bookkeeping")
    store_trace(db, "traces", "run-1", finished_run.trace)
    store_trace(db, "traces", "run-1", finished_run.trace[:3])
    assert len(load_trace(db, "traces", "run-1")) == 3


def test_traces_isolated_by_run_id(finished_run):
    db = Database("bookkeeping")
    store_trace(db, "traces", "run-1", finished_run.trace[:2])
    store_trace(db, "traces", "run-2", finished_run.trace[:5])
    assert len(load_trace(db, "traces", "run-1")) == 2
    assert len(load_trace(db, "traces", "run-2")) == 5


def test_trace_survives_json_serialization(finished_run, tmp_path):
    db = Database("bookkeeping")
    store_trace(db, "traces", "run-1", finished_run.trace)
    path = tmp_path / "db.json"
    db.save(path)
    restored_db = Database.load(path)
    restored = load_trace(restored_db, "traces", "run-1")
    replayed = replay_trace(finished_run.schema, SCORING, restored)
    assert replayed.snapshot() == finished_run.replica.table.snapshot()
