"""Snapshot-equivalent replay properties of the CDC subsystem.

The acceptance property of the CDC subscription API: a consumer that
attaches *mid-run* — while ingest keeps committing, with faults and
shard partitions overlaid — converges to a state byte-identical to a
quiesced snapshot of the producer, without the producer ever pausing.
Two consumers are driven through random schedules here:

- a :class:`~repro.server.shard.FollowerBootstrap` replica spliced
  into the exchange mesh mid-run (chunked DBLog bootstrap → certified
  merge → live exchange tail), and
- a bare :class:`~repro.cdc.view.CdcView` stepped across simulated
  time, including bounded buffers whose overflow forces the snapshot
  fallback.

The oracle is ``dump_json(canonical_state(BootstrapState.capture(...)))``
of the quiesced primary — the same byte-compare the convergence suite
uses.  A pinned-seed fingerprint test asserts the whole composition
(faults × bootstrap × exchange) stays deterministically replayable, and
the ingest-never-paused witness checks commits kept landing between
bootstrap steps.  The CI sanitizer leg re-runs this file under
``REPRO_NET_SANITIZE=1``.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdc.view import CdcView, canonical_state
from repro.client import WorkerClient
from repro.constraints import Template
from repro.net import FaultInjector, FaultPlan, Network, UniformLatency
from repro.obs import dump_json
from repro.server import ShardedBackend
from repro.server.backend import BootstrapState
from repro.sim import RngStreams, Simulator

from tests.test_shard_convergence import (
    HORIZON,
    SCHEMA,
    SCORING,
    _perform,
    _shard_groups,
    operation,
)


def canonical_doc(replica) -> str:
    return dump_json(canonical_state(BootstrapState.capture(replica)))


def _build_rig(n_shards, num_clients, fault_seed, latency_seed):
    """The sharded assembly of ``test_shard_convergence``, faults bound
    but nothing scheduled yet."""
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.01, 1.5),
        streams=RngStreams(latency_seed),
    )
    backend = ShardedBackend(
        sim, network, SCHEMA, SCORING, Template.cardinality(2),
        shards=n_shards,
    )
    names = [f"c{i}" for i in range(num_clients)]
    clients: dict[str, WorkerClient] = {}
    rng_streams = RngStreams(latency_seed)
    for name in names:
        client = WorkerClient(
            name, SCHEMA, SCORING, network, streams=rng_streams
        )
        client.bootstrap(backend.attach_client(name))
        clients[name] = client
    plan = FaultPlan.generate(
        random.Random(fault_seed),
        names,
        horizon=HORIZON,
        outage_prob=0.5,
        min_outage=0.5,
        max_outage=6.0,
        shard_groups=_shard_groups(n_shards) if n_shards > 1 else None,
        shard_partition_prob=0.6,
    )
    injector = FaultInjector(sim, network, plan)
    backend.bind_faults(injector)
    for name in plan.faulted_endpoints():
        client = clients.get(name)
        if client is None:
            continue
        injector.bind(
            name,
            on_disconnect=lambda c=client: (
                backend.detach_client(c.worker_id),
                c.disconnect(),
            ),
            on_reconnect=lambda c=client: c.reconnect(backend),
            on_requeue=client.requeue_unsent,
        )
    injector.install()
    backend.start()
    return sim, network, backend, clients, injector, names


def _schedule_ops(sim, clients, names, schedule):
    for at, client_pick, op_kind, row_pick, column_pick, value_pick in schedule:
        client = clients[names[client_pick % len(names)]]
        sim.schedule_at(
            at,
            lambda c=client, k=op_kind, r=row_pick, col=column_pick,
            v=value_pick: _perform(c, k, r, col, v),
        )


def _schedule_follower_bootstrap(
    sim, backend, start_at, *, chunk, step_every=0.3, capacity=None,
    promote_at=None,
):
    """Start a follower bootstrap at *start_at* and spread its chunk
    reads ``step_every`` apart — collection keeps running in between.
    With *promote_at*, the finished bootstrap tails the live stream and
    only splices into the mesh at that instant.  Returns the mutable
    carrier the driver lands in."""
    state: dict = {"positions": []}

    def mark():
        state["positions"].append((sim.now, backend.changes.position))

    def promote():
        driver = state["driver"]
        if driver.promoted is None:
            mark()
            driver.promote()

    def step():
        driver = state["driver"]
        if driver.promoted is not None:
            return
        more = driver.step() if not driver.live else False
        mark()
        if driver.live or not more:
            if promote_at is None:
                driver.promote()
            else:
                sim.schedule_at(max(promote_at, sim.now), promote)
        else:
            sim.schedule(step_every, step)

    def start():
        state["driver"] = backend.bootstrap_follower(
            "prop", capacity=capacity, chunk_entries=chunk
        )
        mark()
        step()

    sim.schedule_at(start_at, start)
    return state


def _assert_follower_converged(backend, state):
    driver = state["driver"]
    follower = driver.promoted
    assert follower is not None
    assert backend.exchange_backlog() == 0
    assert backend.fully_exchanged()
    reference = backend.primary.replica
    assert follower.replica.snapshot() == reference.snapshot()
    assert (
        follower.replica.table.history_snapshot()
        == reference.table.history_snapshot()
    )
    follower.replica.table.check_vote_invariants()
    # The acceptance byte-compare: captured follower state vs the
    # quiesced-snapshot oracle of the primary.
    assert canonical_doc(follower.replica) == canonical_doc(reference)


@pytest.mark.slow
@settings(max_examples=50, deadline=None)
@given(
    schedule=st.lists(operation, min_size=3, max_size=30),
    n_shards=st.sampled_from([1, 2, 4]),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=1_000),
    start_at=st.floats(min_value=0.2, max_value=8.0, allow_nan=False),
    chunk=st.sampled_from([1, 3, 8]),
)
def test_follower_bootstrap_converges_under_random_fault_plans(
    schedule, n_shards, fault_seed, latency_seed, start_at, chunk
):
    """A replica bootstrapped mid-run — at a random cut point, with a
    random chunk size, under a random fault plan — is byte-identical to
    the quiesced primary once the exchange tail drains."""
    sim, network, backend, clients, injector, names = _build_rig(
        n_shards, 4, fault_seed, latency_seed
    )
    _schedule_ops(sim, clients, names, sorted(schedule))
    state = _schedule_follower_bootstrap(sim, backend, start_at, chunk=chunk)
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    _assert_follower_converged(backend, state)
    network.check_accounting()


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(
    schedule=st.lists(operation, min_size=8, max_size=30),
    n_shards=st.sampled_from([1, 2]),
    fault_seed=st.integers(min_value=0, max_value=2_000),
    latency_seed=st.integers(min_value=0, max_value=500),
    start_at=st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
)
def test_follower_bootstrap_with_tiny_buffer_still_converges(
    schedule, n_shards, fault_seed, latency_seed, start_at
):
    """A 2-event subscription buffer overflows almost immediately; the
    bootstrap degrades to the snapshot fallback and must still promote
    a byte-identical replica."""
    sim, network, backend, clients, injector, names = _build_rig(
        n_shards, 3, fault_seed, latency_seed
    )
    _schedule_ops(sim, clients, names, sorted(schedule))
    state = _schedule_follower_bootstrap(
        sim, backend, start_at, chunk=2, capacity=2
    )
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    _assert_follower_converged(backend, state)


@pytest.mark.slow
@settings(max_examples=50, deadline=None)
@given(
    schedule=st.lists(operation, min_size=3, max_size=30),
    n_shards=st.sampled_from([1, 2, 4]),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=1_000),
    attach_at=st.floats(min_value=0.2, max_value=8.0, allow_nan=False),
    capacity=st.sampled_from([None, 4]),
)
def test_midrun_view_attach_converges(
    schedule, n_shards, fault_seed, latency_seed, attach_at, capacity
):
    """A bare CdcView attached at a random instant — chunk reads spread
    across simulated time, bounded buffers allowed to overflow into the
    snapshot fallback — materializes the quiesced primary exactly."""
    sim, network, backend, clients, injector, names = _build_rig(
        n_shards, 4, fault_seed, latency_seed
    )
    _schedule_ops(sim, clients, names, sorted(schedule))
    state: dict = {}

    def step():
        view = state["view"]
        if view.live:
            return
        if view.step(max_entries=2):
            sim.schedule(0.4, step)

    def attach():
        state["view"] = CdcView(
            backend.subscribe("prop-view", capacity=capacity), label="prop"
        )
        step()

    sim.schedule_at(attach_at, attach)
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    view = state["view"]
    while not view.live:
        view.step(max_entries=2)
    view.refresh()
    assert dump_json(canonical_state(view.state())) == canonical_doc(
        backend.primary.replica
    )
    assert view.cut.position == backend.changes.position


# -- deterministic replay -----------------------------------------------------


_PINNED_SCHEDULE = sorted(
    (round(0.37 * i % 7.9, 3), i,
     ["fill", "fill", "upvote", "downvote"][i % 4], i * 5, i, i * 3)
    for i in range(40)
)


def _fingerprint(fault_seed: int):
    sim, network, backend, clients, injector, names = _build_rig(
        2, 4, fault_seed, latency_seed=5
    )
    _schedule_ops(sim, clients, names, _PINNED_SCHEDULE)
    state = _schedule_follower_bootstrap(sim, backend, 2.5, chunk=3)
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    _assert_follower_converged(backend, state)
    committed_json = json.dumps(
        [
            (c.shard_id, c.lseq, c.worker_id, c.timestamp, m.to_dict())
            for c, m in backend.committed_trace()
        ],
        sort_keys=True,
    )
    events = [(e.time, e.kind, e.endpoint, e.purged) for e in injector.events]
    follower = state["driver"].promoted
    return (
        committed_json,
        canonical_doc(follower.replica),
        state["positions"],
        events,
    )


def test_pinned_seed_bootstrap_is_deterministically_replayable():
    """The full composition — fault plan, mid-run bootstrap cadence,
    exchange splice — replays byte-identically for one seed, and a
    different fault seed genuinely changes the run."""
    first = _fingerprint(fault_seed=11)
    second = _fingerprint(fault_seed=11)
    assert first == second
    third = _fingerprint(fault_seed=12)
    assert first[3] != third[3]


def test_ingest_never_pauses_during_bootstrap():
    """The witness for "collection continues": between the bootstrap's
    first chunk read and its promotion the primary's stream position
    strictly advanced (operations kept committing while the follower
    was reading chunks and tailing the live stream), and the chunk
    reads were genuinely spread across simulated time."""
    sim, network, backend, clients, injector, names = _build_rig(
        2, 4, fault_seed=3, latency_seed=5
    )
    _schedule_ops(sim, clients, names, _PINNED_SCHEDULE)
    state = _schedule_follower_bootstrap(
        sim, backend, 1.0, chunk=1, promote_at=7.0
    )
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    _assert_follower_converged(backend, state)
    positions = state["positions"]
    assert len(positions) >= 3  # start + several chunk steps
    times = [t for t, _ in positions]
    assert times == sorted(times)
    assert times[-1] > times[0]  # the bootstrap spanned simulated time
    # Ops committed while chunks were being read: the stream moved.
    assert positions[-1][1] > positions[0][1]
