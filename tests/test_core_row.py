"""Unit tests for row values and the subsumption order."""

import pytest

from repro.core import Row, RowValue
from repro.core.row import EMPTY_VALUE


def test_empty_value():
    value = RowValue()
    assert value.is_empty
    assert len(value) == 0
    assert value == EMPTY_VALUE


def test_mapping_interface():
    value = RowValue({"b": 2, "a": 1})
    assert value["a"] == 1
    assert sorted(value) == ["a", "b"]
    assert dict(value) == {"a": 1, "b": 2}
    with pytest.raises(KeyError):
        value["ghost"]


def test_equality_order_insensitive():
    assert RowValue({"a": 1, "b": 2}) == RowValue({"b": 2, "a": 1})


def test_equality_against_plain_mapping():
    assert RowValue({"a": 1}) == {"a": 1}


def test_hashable_and_usable_as_dict_key():
    history = {RowValue({"a": 1}): 3}
    assert history[RowValue({"a": 1})] == 3


def test_subsumes():
    small = RowValue({"a": 1})
    big = RowValue({"a": 1, "b": 2})
    assert big.subsumes(small)
    assert big.subsumes(big)
    assert not small.subsumes(big)
    assert small.issubset(big)


def test_subsumes_requires_equal_values():
    assert not RowValue({"a": 2, "b": 2}).subsumes(RowValue({"a": 1}))


def test_everything_subsumes_empty():
    assert RowValue({"a": 1}).subsumes(EMPTY_VALUE)
    assert EMPTY_VALUE.subsumes(EMPTY_VALUE)


def test_with_value():
    value = RowValue({"a": 1}).with_value("b", 2)
    assert value == RowValue({"a": 1, "b": 2})


def test_with_value_rejects_filled_column():
    with pytest.raises(ValueError):
        RowValue({"a": 1}).with_value("a", 2)


def test_without_column():
    value = RowValue({"a": 1, "b": 2}).without_column("a")
    assert value == RowValue({"b": 2})


def test_merge_compatible():
    merged = RowValue({"a": 1}).merge(RowValue({"b": 2}))
    assert merged == RowValue({"a": 1, "b": 2})


def test_merge_conflicting_raises():
    with pytest.raises(ValueError):
        RowValue({"a": 1}).merge(RowValue({"a": 2}))


def test_compatible_with():
    assert RowValue({"a": 1}).compatible_with(RowValue({"b": 2}))
    assert RowValue({"a": 1}).compatible_with(RowValue({"a": 1, "b": 2}))
    assert not RowValue({"a": 1}).compatible_with(RowValue({"a": 2}))


def test_completeness():
    columns = ("a", "b")
    assert RowValue({"a": 1, "b": 2}).is_complete(columns)
    assert not RowValue({"a": 1}).is_complete(columns)
    assert RowValue().is_complete(())


def test_key_extraction():
    value = RowValue({"a": 1, "b": 2, "c": 3})
    assert value.key(("a", "b")) == (1, 2)
    assert RowValue({"a": 1}).key(("a", "b")) is None


def test_missing_columns_order():
    value = RowValue({"b": 2})
    assert value.missing_columns(("a", "b", "c")) == ("a", "c")


def test_filled_columns():
    assert RowValue({"a": 1, "c": 3}).filled_columns() == frozenset({"a", "c"})


def test_non_string_column_rejected():
    with pytest.raises(TypeError):
        RowValue({1: "x"})


def test_row_snapshot_includes_votes():
    row = Row("r1", RowValue({"a": 1}), upvotes=2, downvotes=1)
    snap = row.snapshot()
    assert snap == ("r1", (("a", 1),), 2, 1)


def test_row_repr_mentions_id():
    assert "r1" in repr(Row("r1"))
