"""Tests for crowdlint (repro.analysis): per-rule fixture snippets
(positive / negative / pragma-disabled), the project-level EXH001
exhaustiveness checker on synthetic stacks, the CLI, and — the
self-referential gate — an assertion that ``src/repro`` itself lints
clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    ExhaustivenessConfig,
    check_exhaustiveness,
    disabled_rules,
    lint_file,
    lint_paths,
)
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path)


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


# -- DET001: unseeded entropy -------------------------------------------------


@pytest.mark.parametrize("source", [
    "import random\ndef f():\n    return random.random()\n",
    "import time\ndef f():\n    return time.time()\n",
    "from datetime import datetime\ndef f():\n    return datetime.now()\n",
    "import os\ndef f():\n    return os.urandom(8)\n",
    "import uuid\ndef f():\n    return uuid.uuid4()\n",
    "from random import random as r\ndef f():\n    return r()\n",
    # Seeding from builtin hash() is PYTHONHASHSEED-dependent.
    "import random\ndef f(name):\n    return random.Random(hash(name))\n",
])
def test_det001_flags_direct_entropy(tmp_path, source):
    assert rules_of(lint_snippet(tmp_path, source)) == ["DET001"]


@pytest.mark.parametrize("source", [
    "def f(rng):\n    return rng.random()\n",
    "import random\ndef f():\n    return random.Random(42)\n",
    "from repro.sim.rng import RngStreams\n"
    "def f():\n    return RngStreams(0).stream('x')\n",
])
def test_det001_allows_injected_or_seeded(tmp_path, source):
    assert lint_snippet(tmp_path, source) == []


def test_det001_pragma_suppression(tmp_path):
    source = (
        "import random\n"
        "def f():\n"
        "    return random.random()  # crowdlint: disable=DET001\n"
    )
    assert lint_snippet(tmp_path, source) == []


# -- DET002: unsorted set iteration into order-sensitive sinks ----------------


def test_det002_flags_set_iteration_with_append(tmp_path):
    source = (
        "def f(items: set):\n"
        "    out = []\n"
        "    for item in items:\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    assert rules_of(lint_snippet(tmp_path, source)) == ["DET002"]


def test_det002_flags_inferred_set_literal(tmp_path):
    source = (
        "def f():\n"
        "    pending = {1, 2, 3}\n"
        "    out = []\n"
        "    for item in pending:\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    assert rules_of(lint_snippet(tmp_path, source)) == ["DET002"]


@pytest.mark.parametrize("source", [
    # sorted() restores determinism.
    "def f(items: set):\n"
    "    out = []\n"
    "    for item in sorted(items):\n"
    "        out.append(item)\n"
    "    return out\n",
    # Commutative consumer: order cannot matter.
    "def f(items: set):\n    return sum(x * 2 for x in items)\n",
    # Plain list iteration is deterministic already.
    "def f(items: list):\n"
    "    out = []\n"
    "    for item in items:\n"
    "        out.append(item)\n"
    "    return out\n",
])
def test_det002_negative(tmp_path, source):
    assert lint_snippet(tmp_path, source) == []


def test_det002_pragma_suppression(tmp_path):
    source = (
        "def f(items: set):\n"
        "    out = []\n"
        "    for item in items:  # crowdlint: disable=DET002\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    assert lint_snippet(tmp_path, source) == []


# -- DET003: identity-based ordering ------------------------------------------


def test_det003_flags_id_in_sort_key(tmp_path):
    source = "def f(xs):\n    return sorted(xs, key=lambda v: id(v))\n"
    assert rules_of(lint_snippet(tmp_path, source)) == ["DET003"]


def test_det003_negative_and_pragma(tmp_path):
    clean = "def f(xs):\n    return sorted(xs, key=lambda v: v.name)\n"
    assert lint_snippet(tmp_path, clean) == []
    disabled = (
        "def f(xs):\n"
        "    return sorted(xs, key=lambda v: id(v))"
        "  # crowdlint: disable=DET003\n"
    )
    assert lint_snippet(tmp_path, disabled) == []


# -- MUT001: mutable defaults / replicated module state -----------------------


@pytest.mark.parametrize("source", [
    "def f(acc=[]):\n    return acc\n",
    "def f(acc={}):\n    return acc\n",
    "from collections import defaultdict\n"
    "def f(acc=defaultdict(list)):\n    return acc\n",
])
def test_mut001_flags_mutable_defaults(tmp_path, source):
    assert "MUT001" in rules_of(lint_snippet(tmp_path, source))


def test_mut001_flags_module_state_in_replicated_subsystem(tmp_path):
    diags = lint_snippet(tmp_path, "CACHE = {}\n", name="core/state.py")
    assert rules_of(diags) == ["MUT001"]


def test_mut001_ignores_module_state_outside_replicated_code(tmp_path):
    assert lint_snippet(tmp_path, "CACHE = {}\n", name="tools/state.py") == []


def test_mut001_negative_and_pragma(tmp_path):
    assert lint_snippet(
        tmp_path, "def f(acc=None):\n    return acc or []\n"
    ) == []
    assert lint_snippet(
        tmp_path, "__all__ = ['x']\n", name="core/init.py"
    ) == []
    assert lint_snippet(
        tmp_path,
        "REGISTRY = {}  # crowdlint: disable=MUT001\n",
        name="server/reg.py",
    ) == []


# -- EXH001: message exhaustiveness -------------------------------------------

CLEAN_MESSAGES = '''\
from typing import Union


class InsertMessage:
    def apply(self, table):
        table.apply_insert(self)

    def to_dict(self):
        return {"type": "insert"}


Message = Union[InsertMessage, InsertMessage]


def message_from_dict(data):
    if data["type"] == "insert":
        return InsertMessage()
    raise ValueError(data["type"])
'''


def make_stack(tmp_path, messages_src=CLEAN_MESSAGES, with_handlers=True):
    (tmp_path / "core").mkdir(parents=True, exist_ok=True)
    (tmp_path / "core" / "messages.py").write_text(messages_src)
    (tmp_path / "core" / "table.py").write_text(
        "class CandidateTable:\n    def apply_insert(self, msg):\n        pass\n"
    )
    (tmp_path / "server").mkdir(exist_ok=True)
    (tmp_path / "client").mkdir(exist_ok=True)
    body = "    def on_message(self, source, payload):\n        pass\n"
    if not with_handlers:
        body = "    pass\n"
    (tmp_path / "server" / "backend.py").write_text(
        f"class BackendServer:\n{body}"
    )
    (tmp_path / "client" / "worker_client.py").write_text(
        f"class WorkerClient:\n{body}"
    )
    config = ExhaustivenessConfig.locate(tmp_path)
    assert config is not None
    return config


def test_exh001_clean_stack(tmp_path):
    assert check_exhaustiveness(make_stack(tmp_path)) == []


def test_exh001_missing_apply(tmp_path):
    broken = CLEAN_MESSAGES.replace(
        "    def apply(self, table):\n        table.apply_insert(self)\n\n", ""
    )
    diags = check_exhaustiveness(make_stack(tmp_path, broken))
    assert any("no apply()" in d.message for d in diags)


def test_exh001_apply_targets_nonexistent_table_method(tmp_path):
    broken = CLEAN_MESSAGES.replace("apply_insert", "apply_bogus")
    diags = check_exhaustiveness(make_stack(tmp_path, broken))
    assert any("apply_bogus" in d.message for d in diags)


def test_exh001_undecoded_type_tag(tmp_path):
    broken = CLEAN_MESSAGES.replace('data["type"] == "insert"', 'data["type"] == "other"')
    diags = check_exhaustiveness(make_stack(tmp_path, broken))
    assert any("no branch for type tag 'insert'" in d.message for d in diags)


def test_exh001_unregistered_message_class(tmp_path):
    rogue = CLEAN_MESSAGES + (
        "\n\nclass RogueMessage:\n"
        "    def apply(self, table):\n        table.apply_insert(self)\n"
        "    def to_dict(self):\n        return {\"type\": \"insert\"}\n"
    )
    diags = check_exhaustiveness(make_stack(tmp_path, rogue))
    assert any("not registered in the Message union" in d.message for d in diags)


def test_exh001_missing_handler_entry_point(tmp_path):
    config = make_stack(tmp_path, with_handlers=False)
    diags = check_exhaustiveness(config)
    assert sum("on_message missing" in d.message for d in diags) == 2


# -- driver / CLI -------------------------------------------------------------


def test_lint_paths_sorts_and_selects(tmp_path):
    (tmp_path / "b.py").write_text("def f(acc=[]):\n    return acc\n")
    (tmp_path / "a.py").write_text(
        "import random\ndef f():\n    return random.random()\n"
    )
    diags = lint_paths([tmp_path])
    assert [Path(d.path).name for d in diags] == ["a.py", "b.py"]
    only_mut = lint_paths([tmp_path], select=frozenset({"MUT001"}))
    assert rules_of(only_mut) == ["MUT001"]


def test_unparsable_file_reports_parse_diagnostic(tmp_path):
    diags = lint_snippet(tmp_path, "def broken(:\n")
    assert rules_of(diags) == ["PARSE"]


def test_disabled_rules_parsing():
    assert disabled_rules("x = 1") is None
    assert disabled_rules("x = 1  # crowdlint: disable") == frozenset()
    assert disabled_rules(
        "x = 1  # crowdlint: disable=DET001,MUT001"
    ) == frozenset({"DET001", "MUT001"})


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def f(rng):\n    return rng.random()\n")
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_violation_exits_nonzero_with_location(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\ndef f():\n    return random.random()\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:3:" in out and "DET001" in out


def test_cli_warn_only_exits_zero(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("def f(acc=[]):\n    return acc\n")
    assert main([str(tmp_path), "--warn-only"]) == 0
    assert "MUT001" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("def f(acc=[]):\n    return acc\n")
    assert main([str(tmp_path), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["violations"] == 1
    assert report["diagnostics"][0]["rule"] == "MUT001"


def test_cli_rejects_unknown_rule(tmp_path):
    with pytest.raises(SystemExit):
        main([str(tmp_path), "--select", "NOPE999"])


# -- the gate: the shipped tree is clean --------------------------------------


def test_src_repro_is_crowdlint_clean_modulo_baseline():
    """The acceptance criterion: ``python -m repro.analysis src/repro
    --strict`` exits 0 on the shipped tree — no findings beyond the
    committed burn-down baseline — asserted here so any regression
    fails the plain test suite too, not only the CI lint job."""
    from repro.analysis import Baseline
    from repro.analysis.baseline import BASELINE_NAME

    diagnostics = lint_paths([REPO_ROOT / "src" / "repro"])
    baseline = Baseline.load(REPO_ROOT / BASELINE_NAME)
    result = baseline.apply(diagnostics, REPO_ROOT)
    assert result.new == [], "\n".join(d.format() for d in result.new)
    # The baseline may only shrink — a stale entry means a finding was
    # fixed without deleting its suppression (burn it down), and every
    # suppressed entry must still correspond to a real finding.
    assert not result.stale, f"stale baseline entries: {result.stale}"


def test_all_rules_registry():
    assert set(ALL_RULES) == {
        "DET001", "DET002", "DET003", "MUT001", "EXH001",
        "COMM001", "COMM002", "WIRE001", "WIRE002", "ESC001", "OBS001",
    }
