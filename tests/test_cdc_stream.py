"""Unit tests for the CDC subsystem (repro.cdc).

Covers the pieces in isolation — :class:`StreamCursor` window
semantics, the wire codecs, :class:`ChangeStream` emission and
``from_cut`` replay, :class:`Subscription` overflow → snapshot
fallback, the chunked :class:`CdcView` bootstrap against a live
backend, the leaderboard consumer, the session facade, and a
quiet-stream follower bootstrap.  The mid-run, fault-overlaid
convergence properties live in ``tests/test_cdc_properties.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cdc import (
    ChangeEvent,
    CdcView,
    Cut,
    LeaderboardView,
    SnapshotChunk,
    StreamCursor,
    change_event_from_dict,
    chunk_from_dict,
    cut_from_dict,
)
from repro.cdc.view import canonical_state
from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.messages import (
    InsertMessage,
    ReplaceMessage,
    UpvoteMessage,
)
from repro.core.schema import soccer_player_schema
from repro.net import ConstantLatency, Network
from repro.obs import dump_json
from repro.server import BackendServer, ShardedBackend
from repro.server.backend import BootstrapState
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)


def make_backend(num_clients=3, template_rows=2, **kwargs):
    """A plain backend rig, *not yet started* — so tests can subscribe
    before the Central Client's template inserts become history."""
    sim = Simulator()
    network = Network(
        sim, default_latency=ConstantLatency(0.05), streams=RngStreams(0)
    )
    schema = soccer_player_schema()
    template = Template.cardinality(template_rows)
    backend = BackendServer(sim, network, schema, SCORING, template, **kwargs)
    clients = []
    for i in range(num_clients):
        client = WorkerClient(
            f"w{i}", schema, SCORING, network, streams=RngStreams(i)
        )
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    return sim, backend, clients


def fill_row(client, row_id, values=None):
    values = values or {
        "name": "Messi", "nationality": "Argentina",
        "position": "FW", "caps": 83, "goals": 37,
    }
    for column, value in values.items():
        row_id = client.fill(row_id, column, value)
    return row_id


def drive_some_ops(sim, backend, clients):
    """A small deterministic burst: one full row (w0, with its
    completion auto-upvote), an upvote (w1), a partial fill (w1), and a
    downvote (w2) — every namespace of the replica gets populated, and
    each client keeps legal moves in reserve for the tests' tails."""
    backend.start()
    sim.run()
    fill_row(clients[0], clients[0].replica.table.row_ids()[0])
    sim.run()
    target = [
        r.row_id
        for r in clients[1].replica.table.rows()
        if r.value.is_complete(clients[1].schema.column_names)
    ][0]
    clients[1].upvote(target)
    sim.run()
    other = [r for r in clients[1].replica.table.row_ids() if r != target][0]
    clients[1].fill(other, "name", "Xavi")
    sim.run()
    clients[2].downvote(target)
    sim.run()
    return target


def extra_fill(sim, client, value="Spain"):
    """One more guaranteed-legal committed op: fill the partial row's
    empty ``nationality`` cell."""
    row = next(
        r for r in client.replica.table.rows()
        if dict(r.value.items()).get("name") == "Xavi"
    )
    client.fill(row.row_id, "nationality", value)
    sim.run()


def capture_doc(backend) -> str:
    return dump_json(canonical_state(BootstrapState.capture(backend.replica)))


# -- StreamCursor -------------------------------------------------------------


def test_cursor_unbounded_window_retains_everything():
    cursor = StreamCursor(window=None)
    for ref in range(5):
        cursor.record_send(ref)
    assert cursor.sent_count == 5
    assert cursor.dropped_prefix == 0
    assert cursor.unacked(0) == [0, 1, 2, 3, 4]
    assert cursor.unacked(3) == [3, 4]
    assert cursor.unacked(5) == []


def test_cursor_zero_window_counts_only():
    cursor = StreamCursor(window=0)
    cursor.record_send("ignored")
    cursor.record_bulk(3)
    assert cursor.sent_count == 4
    assert cursor.dropped_prefix == 4
    # No refs retained: any suffix starting before the count is lost...
    assert cursor.unacked(2) is None
    # ...but the full prefix acknowledges cleanly.
    assert cursor.unacked(4) == []


def test_cursor_bounded_window_overflow_rollback_reset():
    cursor = StreamCursor(window=3)
    for ref in range(5):
        cursor.record_send(ref)
    assert cursor.dropped_prefix == 2
    assert cursor.unacked(1) is None  # ref 1 fell off the window
    assert cursor.unacked(2) == [2, 3, 4]
    assert cursor.unacked(4) == [4]
    cursor.rollback(3)
    assert cursor.sent_count == 3
    assert cursor.unacked(2) == [2]
    cursor.reset()
    assert cursor.sent_count == 0
    assert cursor.unacked(0) == []


def test_cursor_rejects_negative_window():
    with pytest.raises(ValueError, match="window"):
        StreamCursor(window=-1)


# -- wire codecs --------------------------------------------------------------


def _json_round_trip(data: dict) -> dict:
    return json.loads(json.dumps(data, sort_keys=True))


def test_change_event_round_trips_through_json():
    event = ChangeEvent(
        position=7,
        shard_id=2,
        lseq=4,
        timestamp=12.5,
        worker_id="w1",
        message=InsertMessage(row_id="w1#3"),
    )
    data = _json_round_trip(event.to_dict())
    assert data["schema_version"] == 1
    rebuilt = change_event_from_dict(data)
    assert rebuilt == event
    assert rebuilt.to_dict() == event.to_dict()


def test_cut_round_trip_and_coverage_semantics():
    cut = Cut(position=9, counts=((0, 5), (2, 4)))
    rebuilt = cut_from_dict(_json_round_trip(cut.to_dict()))
    assert rebuilt == cut
    assert cut.count_for(0) == 5
    assert cut.count_for(1) == 0  # absent shard: empty prefix
    assert cut.covers(0, 4) and not cut.covers(0, 5)
    assert not cut.covers(1, 0)


def test_snapshot_chunk_round_trip_restores_tuples():
    low = Cut(position=3, counts=((0, 3),))
    chunk = SnapshotChunk(
        namespace="upvotes",
        entries=(((("caps", 83), ("name", "Messi")), 2),),
        superseded=(),
        boundary=(("caps", "int", "83"),),
        low=low,
        high=low,
    )
    rebuilt = chunk_from_dict(_json_round_trip(chunk.to_dict()))
    assert rebuilt == chunk
    assert isinstance(rebuilt.entries[0][0], tuple)
    assert isinstance(rebuilt.boundary[0], tuple)


# -- ChangeStream emission ----------------------------------------------------


def test_stream_positions_dense_and_cut_matches_trace():
    sim, backend, clients = make_backend()
    sub = backend.subscribe("test")
    drive_some_ops(sim, backend, clients)
    events = sub.take()
    assert events is not None and events
    assert [e.position for e in events] == list(range(len(events)))
    assert len(events) == len(backend.trace)
    assert all(e.shard_id == 0 for e in events)
    assert [e.lseq for e in events] == [r.seq for r in backend.trace]
    cut = backend.changes.cut()
    assert cut.position == len(backend.trace)
    assert cut.counts == ((0, len(backend.trace)),)


def test_stream_without_subscribers_only_counts():
    sim, backend, clients = make_backend()
    drive_some_ops(sim, backend, clients)
    stream = backend.changes
    assert not stream.active
    assert len(stream._recent) == 0  # no event objects were built
    assert stream.position == len(backend.trace)


def test_events_carry_worker_attribution():
    sim, backend, clients = make_backend()
    sub = backend.subscribe("test")
    drive_some_ops(sim, backend, clients)
    events = sub.take()
    authors = {e.worker_id for e in events}
    assert "w0" in authors and "w1" in authors and "__central__" in authors
    for event, record in zip(events, backend.trace):
        assert event.worker_id == record.worker_id
        assert event.message is record.message
        assert event.timestamp == record.timestamp


# -- Subscription: ack, overflow, resync --------------------------------------


def test_ack_outside_epoch_bounds_raises():
    sim, backend, clients = make_backend()
    sub = backend.subscribe("test")
    drive_some_ops(sim, backend, clients)
    sent = sub.cursor.sent_count
    with pytest.raises(ValueError, match="acked"):
        sub.ack(sent + 1)
    sub.ack(sent)
    with pytest.raises(ValueError, match="acked"):
        sub.ack(sent - 1)  # cumulative count cannot move backwards


def test_overflow_marks_lost_and_resync_recovers():
    sim, backend, clients = make_backend()
    sub = backend.subscribe("small", capacity=2)
    drive_some_ops(sim, backend, clients)
    assert sub.lost
    assert sub.overflows == 1
    assert sub.poll() is None
    state, cut = sub.resync()
    assert dump_json(canonical_state(state)) == capture_doc(backend)
    assert cut.position == backend.changes.position
    assert not sub.lost
    # The new epoch flows events again.
    extra_fill(sim, clients[0])
    tail = sub.take()
    assert tail is not None and len(tail) >= 1


def test_closed_subscription_receives_nothing_more():
    sim, backend, clients = make_backend()
    sub = backend.subscribe("test")
    drive_some_ops(sim, backend, clients)
    seen = sub.cursor.sent_count
    sub.close()
    extra_fill(sim, clients[0])
    assert sub.cursor.sent_count == seen
    assert sub not in backend.changes.subscriptions


# -- from_cut resume ----------------------------------------------------------


def test_subscribe_from_covered_cut_replays_exact_suffix():
    sim, backend, clients = make_backend()
    witness = backend.subscribe("witness")
    backend.start()
    sim.run()
    mid_cut = backend.changes.cut()
    fill_row(clients[0], clients[0].replica.table.row_ids()[0])
    sim.run()
    resumed = backend.subscribe("resumed", from_cut=mid_cut)
    expected = [
        e for e in witness.take() if e.position >= mid_cut.position
    ]
    assert expected  # the second batch really added events
    assert resumed.take() == expected


def test_subscribe_from_stale_cut_is_lost_then_resyncs():
    sim, backend, clients = make_backend(oplog_capacity=4)
    backend.subscribe("activator")  # makes the stream build events
    drive_some_ops(sim, backend, clients)
    assert backend.changes.position > 4  # beyond the 4-event retention
    stale = backend.subscribe("stale", from_cut=Cut(0, ()))
    assert stale.lost
    assert stale.poll() is None
    state, _cut = stale.resync()
    assert dump_json(canonical_state(state)) == capture_doc(backend)


def test_subscribe_from_future_cut_raises():
    sim, backend, clients = make_backend()
    with pytest.raises(ValueError, match="position"):
        backend.subscribe("future", from_cut=Cut(99, ((0, 99),)))


# -- CdcView: chunked bootstrap and live tail ---------------------------------


def test_view_subscribed_at_birth_is_live_immediately():
    sim, backend, clients = make_backend()
    view = CdcView(backend.subscribe("birth"))
    assert view.live
    drive_some_ops(sim, backend, clients)
    view.refresh()
    assert dump_json(canonical_state(view.state())) == capture_doc(backend)
    assert view.cut.position == backend.changes.position


def test_midrun_chunked_bootstrap_converges_to_capture():
    sim, backend, clients = make_backend()
    drive_some_ops(sim, backend, clients)
    view = CdcView(backend.subscribe("late"), label="late")
    assert not view.live  # history predates the subscription
    view.bootstrap(max_entries=2)
    assert view.live
    assert view.sub.chunks_read >= 3  # every namespace was walked
    assert dump_json(canonical_state(view.state())) == capture_doc(backend)
    # The live tail keeps tracking.
    extra_fill(sim, clients[2])
    assert view.refresh() >= 1
    assert dump_json(canonical_state(view.state())) == capture_doc(backend)


def test_bootstrap_interleaved_with_live_commits():
    """Events that land between chunk reads are certified against the
    chunk windows: replayed iff their window's cut predates them."""
    sim, backend, clients = make_backend()
    drive_some_ops(sim, backend, clients)
    view = CdcView(backend.subscribe("interleaved"))
    assert view.step(max_entries=1)  # first rows chunk only
    # The producer keeps committing mid-bootstrap.
    extra_fill(sim, clients[0])
    view.bootstrap(max_entries=1)
    assert dump_json(canonical_state(view.state())) == capture_doc(backend)


def test_view_overflow_during_tail_falls_back_to_snapshot():
    sim, backend, clients = make_backend()
    view = CdcView(backend.subscribe("tiny", capacity=2))
    drive_some_ops(sim, backend, clients)
    assert view.sub.lost
    view.refresh()  # overflow path: snapshot fallback, then live again
    assert view.sub.snapshot_fallbacks == 1
    assert dump_json(canonical_state(view.state())) == capture_doc(backend)


def test_refresh_before_bootstrap_raises():
    sim, backend, clients = make_backend()
    drive_some_ops(sim, backend, clients)
    view = CdcView(backend.subscribe("early"))
    with pytest.raises(RuntimeError, match="bootstrapping"):
        view.refresh()


# -- the leaderboard consumer -------------------------------------------------


def _trace_tallies(backend):
    counts: dict[str, dict[str, int]] = {}
    for record in backend.worker_trace():
        tally = counts.setdefault(
            record.worker_id,
            {"fills": 0, "inserts": 0, "upvotes": 0, "downvotes": 0,
             "undos": 0},
        )
        message = record.message
        if isinstance(message, ReplaceMessage):
            tally["fills"] += 1
        elif isinstance(message, InsertMessage):
            tally["inserts"] += 1
        elif isinstance(message, UpvoteMessage):
            tally["upvotes"] += 1
        elif type(message).__name__ == "DownvoteMessage":
            tally["downvotes"] += 1
        else:
            tally["undos"] += 1
    return counts


def test_leaderboard_at_birth_matches_trace():
    sim, backend, clients = make_backend()
    board = LeaderboardView(backend.subscribe("board"))
    drive_some_ops(sim, backend, clients)
    snapshot = board.snapshot()
    assert snapshot.position == backend.changes.position
    assert snapshot.events == len(backend.trace)
    assert snapshot.events - snapshot.central_events == len(
        backend.worker_trace()
    )
    assert snapshot.candidate_rows == len(backend.replica.table)
    expected = _trace_tallies(backend)
    assert {t.worker_id for t in snapshot.workers} == set(expected)
    for tally in snapshot.workers:
        for kind, count in expected[tally.worker_id].items():
            assert getattr(tally, kind) == count
    # Standings order: busiest first, ties by id.
    totals = [t.total for t in snapshot.workers]
    assert totals == sorted(totals, reverse=True)
    assert snapshot.to_dict()["workers"][0]["total"] == totals[0]


def test_leaderboard_midrun_attach_tallies_tail_only():
    sim, backend, clients = make_backend()
    drive_some_ops(sim, backend, clients)
    board = LeaderboardView(backend.subscribe("late-board"))
    assert board.snapshot().events == 0  # history is not re-attributed
    assert board.snapshot().candidate_rows == len(backend.replica.table)
    extra_fill(sim, clients[1])
    snapshot = board.snapshot()
    assert snapshot.events == 1
    assert snapshot.workers[0].worker_id == "w1"
    assert snapshot.workers[0].fills == 1


# -- the session facade -------------------------------------------------------


def test_session_facade_exposes_cdc():
    from repro.session import CollectionSession

    session = CollectionSession(
        seed=3, schema=soccer_player_schema(), scoring=SCORING,
        target_rows=2,
    )
    board = session.leaderboard()
    assert session.leaderboard() is board  # one per session, cached
    sub = session.subscribe("probe")
    assert sub.stream is session.backend.changes
    state, cut = session.snapshot_cut()
    assert cut.position == session.backend.changes.position
    assert dump_json(canonical_state(state)) == capture_doc(session.backend)


# -- follower bootstrap (quiet stream) ----------------------------------------


def test_follower_bootstrap_on_quiet_stream_and_tail_exchange():
    from tests.test_shard_convergence import (
        _PINNED_SCHEDULE,
        _run_sharded_schedule,
    )

    backend, clients, injector, network = _run_sharded_schedule(
        2, 3, _PINNED_SCHEDULE, fault_seed=4, latency_seed=9
    )
    bootstrap = backend.bootstrap_follower("replica-a", chunk_entries=4)
    while not bootstrap.live:
        bootstrap.step()
    follower = bootstrap.promote()
    assert follower in backend.followers
    assert follower.shard_id == 2
    assert follower.replica.snapshot() == backend.primary.replica.snapshot()
    assert (
        follower.replica.table.history_snapshot()
        == backend.primary.replica.table.history_snapshot()
    )
    # Fresh commits after promotion reach the follower via exchange —
    # a just-attached client has a legal downvote on any row.
    sim = backend.primary.sim
    from tests.test_shard_convergence import SCHEMA as MINI_SCHEMA

    late = WorkerClient(
        "late", MINI_SCHEMA, SCORING, network, streams=RngStreams(99)
    )
    late.bootstrap(backend.attach_client("late"))
    sim.run()
    late.downvote(late.replica.table.row_ids()[0])
    sim.run()
    assert backend.exchange_backlog() == 0
    assert backend.fully_exchanged()
    assert follower.replica.snapshot() == backend.primary.replica.snapshot()
    # Promotion is one-shot.
    with pytest.raises(RuntimeError):
        bootstrap.promote()
