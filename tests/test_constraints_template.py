"""Unit tests for templates: predicates, values, cardinality."""

import pytest

from repro.constraints import (
    Predicate,
    PredicateOp,
    Template,
    TemplateError,
    TemplateRow,
    satisfies_template,
)
from repro.core import RowValue
from repro.core.schema import soccer_player_schema


def full(name, nationality, position, caps, goals):
    return RowValue(
        {
            "name": name,
            "nationality": nationality,
            "position": position,
            "caps": caps,
            "goals": goals,
        }
    )


class TestPredicate:
    def test_equals(self):
        assert Predicate.equals("FW").matches("FW")
        assert not Predicate.equals("FW").matches("MF")
        assert Predicate.equals("FW").is_equality

    @pytest.mark.parametrize(
        "text,value,expected",
        [
            ("=FW", "FW", True),
            ("!=FW", "MF", True),
            ("!=FW", "FW", False),
            (">=100", 150, True),
            (">=100", 99, False),
            ("<=30", 30, True),
            ("<30", 30, False),
            (">30", 31, True),
            ("~^Mes", "Messi", True),
            ("~^Mes", "Ramos", False),
            ("in{GK,DF}", "GK", True),
            ("in{GK,DF}", "FW", False),
        ],
    )
    def test_parse_and_match(self, text, value, expected):
        assert Predicate.parse(text).matches(value) is expected

    def test_parse_coerces_numbers(self):
        assert Predicate.parse("=83").operand == 83
        assert Predicate.parse("=8.5").operand == 8.5
        assert Predicate.parse("=Brazil").operand == "Brazil"

    def test_parse_rejects_garbage(self):
        with pytest.raises(TemplateError):
            Predicate.parse("??what")

    def test_incomparable_types_never_match(self):
        assert not Predicate.parse(">=100").matches("many")

    def test_str_roundtrip(self):
        for text in ["=FW", "!=3", ">=100", "<5", "~^a", "in{GK,DF}"]:
            pred = Predicate.parse(text)
            assert Predicate.parse(str(pred)).matches is not None
            assert str(Predicate.parse(str(pred))) == str(pred)


class TestTemplateRow:
    def test_from_values_all_equality(self):
        row = TemplateRow.from_values("a", {"position": "FW"})
        assert row.is_values_row
        assert row.predicate_for("position").operand == "FW"
        assert row.predicate_for("caps") is None

    def test_empty_row(self):
        row = TemplateRow.empty("a")
        assert row.is_empty
        assert row.satisfied_by(RowValue())
        assert row.satisfied_by(full("X", "Y", "FW", 1, 0))

    def test_satisfied_by_requires_filled_matching_cells(self):
        row = TemplateRow.from_values("a", {"nationality": "Brazil"})
        assert row.satisfied_by(full("X", "Brazil", "FW", 1, 0))
        assert not row.satisfied_by(full("X", "Spain", "FW", 1, 0))
        assert not row.satisfied_by(RowValue({"position": "FW"}))

    def test_predicates_row(self):
        row = TemplateRow.from_predicates(
            "a", {"nationality": "=Spain", "caps": ">=100"}
        )
        assert not row.is_values_row
        assert row.satisfied_by(full("C", "Spain", "GK", 150, 0))
        assert not row.satisfied_by(full("C", "Spain", "GK", 99, 0))

    def test_equality_values_excludes_predicates(self):
        row = TemplateRow.from_predicates(
            "a", {"nationality": "=Spain", "caps": ">=100"}
        )
        assert row.equality_values() == RowValue({"nationality": "Spain"})

    def test_connects_on_values_rows_is_subsumption(self):
        row = TemplateRow.from_values("a", {"position": "FW"})
        assert row.connects(RowValue({"position": "FW"}))
        assert not row.connects(RowValue({"position": "MF"}))
        assert not row.connects(RowValue({"name": "X"}))  # unfilled != match

    def test_connects_on_predicate_rows_allows_empty_cells(self):
        row = TemplateRow.from_predicates(
            "a", {"nationality": "=Spain", "caps": ">=100"}
        )
        # caps still empty: the row may yet satisfy the predicate.
        assert row.connects(RowValue({"nationality": "Spain"}))
        # caps filled wrong: it can never satisfy it.
        assert not row.connects(
            RowValue({"nationality": "Spain", "caps": 80})
        )

    def test_key_values(self):
        schema = soccer_player_schema()
        complete_key = TemplateRow.from_values(
            "a", {"name": "X", "nationality": "Y"}
        )
        assert complete_key.key_values(schema) == ("X", "Y")
        assert TemplateRow.from_values(
            "b", {"nationality": "Y"}
        ).key_values(schema) is None


class TestTemplate:
    def test_cardinality_template(self):
        template = Template.cardinality(3)
        assert len(template) == 3
        assert all(row.is_empty for row in template)

    def test_cardinality_negative_rejected(self):
        with pytest.raises(TemplateError):
            Template.cardinality(-1)

    def test_with_cardinality_pads(self):
        template = Template.from_values(
            [{"position": "FW"}], cardinality=4
        )
        assert len(template) == 4
        assert sum(1 for row in template if row.is_empty) == 3

    def test_with_cardinality_never_shrinks(self):
        template = Template.from_values(
            [{"position": "FW"}, {"position": "GK"}], cardinality=1
        )
        assert len(template) == 2

    def test_labels_follow_paper_convention(self):
        template = Template.cardinality(3)
        assert [row.label for row in template.rows] == ["a", "b", "c"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TemplateError):
            Template([TemplateRow.empty("a"), TemplateRow.empty("a")])

    def test_validate_against_schema(self):
        schema = soccer_player_schema()
        Template.from_values([{"position": "FW"}]).validate_against(schema)
        with pytest.raises(TemplateError):
            Template.from_values([{"ghost": 1}]).validate_against(schema)
        with pytest.raises(TemplateError):
            Template.from_values([{"caps": "eighty"}]).validate_against(schema)

    def test_validate_rejects_duplicate_pinned_keys(self):
        schema = soccer_player_schema()
        template = Template.from_values(
            [
                {"name": "X", "nationality": "Y"},
                {"name": "X", "nationality": "Y", "position": "FW"},
            ]
        )
        with pytest.raises(TemplateError):
            template.validate_against(schema)

    def test_dict_roundtrip(self):
        template = Template.from_predicates(
            [
                {"position": "=FW", "goals": ">=30"},
                {"nationality": "=Brazil"},
                {},
            ]
        )
        restored = Template.from_dict(template.to_dict())
        assert len(restored) == 3
        probe = full("X", "Brazil", "FW", 80, 35)
        for original, copy in zip(template.rows, restored.rows):
            assert original.satisfied_by(probe) == copy.satisfied_by(probe)


class TestSatisfiesTemplate:
    def test_paper_values_constraint_example(self):
        """Section 2.3: the final table of section 2.2 satisfies the
        {FW, Brazil, Spain} template."""
        template = Template.from_values(
            [{"position": "FW"}, {"nationality": "Brazil"},
             {"nationality": "Spain"}]
        )
        final = [
            full("Lionel Messi", "Argentina", "FW", 83, 37),
            full("Ronaldinho", "Brazil", "MF", 97, 33),
            full("Iker Casillas", "Spain", "GK", 150, 0),
        ]
        assert satisfies_template(final, template)

    def test_paper_predicates_constraint_example(self):
        """Section 2.3: the refined predicates template is also
        satisfied by the same final table."""
        template = Template.from_predicates(
            [
                {"position": "='FW'".replace("'", ""), "goals": ">=30"},
                {"nationality": "=Brazil", "goals": ">=30"},
                {"nationality": "=Spain", "caps": ">=100"},
            ]
        )
        final = [
            full("Lionel Messi", "Argentina", "FW", 83, 37),
            full("Ronaldinho", "Brazil", "MF", 97, 33),
            full("Iker Casillas", "Spain", "GK", 150, 0),
        ]
        assert satisfies_template(final, template)

    def test_uniqueness_requirement(self):
        """One final row cannot satisfy two template rows at once."""
        template = Template.from_values(
            [{"nationality": "Brazil"}, {"nationality": "Brazil"}]
        )
        one_brazilian = [full("X", "Brazil", "FW", 80, 30)]
        assert not satisfies_template(one_brazilian, template)
        two_brazilians = one_brazilian + [full("Y", "Brazil", "MF", 85, 5)]
        assert satisfies_template(two_brazilians, template)

    def test_cardinality_satisfaction(self):
        template = Template.cardinality(2)
        assert not satisfies_template([full("X", "Y", "FW", 1, 0)], template)
        assert satisfies_template(
            [full("X", "Y", "FW", 1, 0), full("Z", "W", "GK", 2, 0)], template
        )

    def test_empty_template_always_satisfied(self):
        assert satisfies_template([], Template([]))


class TestBetweenPredicate:
    def test_parse_and_match(self):
        predicate = Predicate.parse("between{80,99}")
        assert predicate.op is PredicateOp.BETWEEN
        assert predicate.matches(80)
        assert predicate.matches(99)
        assert not predicate.matches(79)
        assert not predicate.matches(100)
        assert not predicate.matches("eighty")

    def test_str_roundtrip(self):
        predicate = Predicate.parse("between{80,99}")
        assert Predicate.parse(str(predicate)) == predicate

    def test_malformed_bounds_rejected(self):
        with pytest.raises(TemplateError):
            Predicate.parse("between{80}")
        with pytest.raises(TemplateError):
            Predicate.parse("between{1,2,3}")

    def test_template_roundtrip_with_between(self):
        template = Template.from_predicates(
            [{"caps": "between{80,99}"}], cardinality=2
        )
        restored = Template.from_dict(template.to_dict())
        probe = RowValue({"caps": 85})
        assert restored.rows[0].satisfied_by(probe)
        assert not restored.rows[0].satisfied_by(RowValue({"caps": 120}))
