"""crowdlint 2.0 infrastructure: the committed-baseline ledger, the
file-hash result cache (including the CI ``--verify-cache`` gate),
SARIF rendering, pragma validation, and the new CLI surface."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Diagnostic,
    ResultCache,
    lint_file,
    lint_paths,
    render_sarif,
    rule_docs,
)
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def diag(rule="MUT001", path="src/mod.py", line=3, col=1, message="boom"):
    return Diagnostic(rule=rule, path=path, line=line, col=col, message=message)


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


#: A snippet with exactly one finding (MUT001 mutable default).
BAD = "def f(acc=[]):\n    return acc\n"
CLEAN = "def f(rng):\n    return rng.random()\n"


# -- baseline -----------------------------------------------------------------


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        baseline = Baseline.from_diagnostics([diag(), diag(), diag(line=9)])
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        # Same (rule, path, message) keys fold into one counted entry.
        assert loaded.counts == {("MUT001", "src/mod.py", "boom"): 3}

    def test_apply_splits_new_suppressed_stale(self):
        baseline = Baseline.from_diagnostics([diag()])
        result = baseline.apply([diag(), diag(line=50)])
        # One occurrence budgeted: the first is suppressed, the second
        # (a genuinely new instance of the same finding) is new.
        assert len(result.suppressed) == 1 and len(result.new) == 1
        assert result.stale == []

    def test_line_drift_does_not_resurrect_findings(self):
        baseline = Baseline.from_diagnostics([diag(line=3)])
        result = baseline.apply([diag(line=120)])  # shifted by edits
        assert result.new == [] and len(result.suppressed) == 1

    def test_stale_entries_reported_for_burn_down(self):
        baseline = Baseline.from_diagnostics([diag(), diag(rule="DET001")])
        result = baseline.apply([diag()])
        assert result.stale == [("DET001", "src/mod.py", "boom")]

    def test_paths_stored_repo_relative(self, tmp_path):
        found = diag(path=str(tmp_path / "pkg" / "mod.py"))
        baseline = Baseline.from_diagnostics([found], root=tmp_path)
        assert ("MUT001", "pkg/mod.py", "boom") in baseline.counts
        assert baseline.apply([found], root=tmp_path).new == []

    @pytest.mark.parametrize("content", [
        "{not json",
        "[1, 2]",
        '{"no_findings": true}',
        '{"findings": [{"rule": "X"}]}',  # entry missing path/message
    ])
    def test_malformed_baseline_fails_loudly(self, tmp_path, content):
        target = tmp_path / "baseline.json"
        target.write_text(content)
        with pytest.raises(ValueError, match="malformed baseline"):
            Baseline.load(target)

    def test_cli_write_then_strict_is_clean(self, tmp_path, capsys):
        write(tmp_path, "bad.py", BAD)
        baseline = tmp_path / "b.json"
        assert main([
            str(tmp_path), "--write-baseline", "--baseline", str(baseline),
        ]) == 0
        assert baseline.is_file()
        # Strict now passes: the finding is accepted legacy debt...
        assert main([
            str(tmp_path), "--strict", "--baseline", str(baseline),
        ]) == 0
        assert "suppressed" in capsys.readouterr().out
        # ...but a NEW finding still fails strict.
        write(tmp_path, "worse.py", BAD)
        assert main([
            str(tmp_path), "--strict", "--baseline", str(baseline),
        ]) == 1

    def test_cli_strict_reports_stale_entries(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", BAD)
        baseline = tmp_path / "b.json"
        main([str(tmp_path), "--write-baseline", "--baseline", str(baseline)])
        bad.write_text(CLEAN)  # the legacy finding is fixed
        assert main([
            str(tmp_path), "--strict", "--baseline", str(baseline),
        ]) == 0
        assert "stale-baseline" in capsys.readouterr().out

    def test_cli_malformed_baseline_exits_two(self, tmp_path, capsys):
        write(tmp_path, "ok.py", CLEAN)
        baseline = tmp_path / "b.json"
        baseline.write_text("{broken")
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 2
        assert "malformed baseline" in capsys.readouterr().out


# -- result cache -------------------------------------------------------------


class TestResultCache:
    def test_second_run_hits_and_agrees(self, tmp_path):
        write(tmp_path, "bad.py", BAD)
        cache_path = tmp_path / "cache.json"
        first_cache = ResultCache(cache_path)
        first = lint_paths([tmp_path], cache=first_cache)
        first_cache.save()

        warm = ResultCache(cache_path)
        second = lint_paths([tmp_path], cache=warm)
        assert second == first
        assert warm.hits >= 2  # the file entry and the project entry
        assert warm.misses == 0

    def test_edit_invalidates_file_and_project_entries(self, tmp_path):
        bad = write(tmp_path, "bad.py", BAD)
        cache_path = tmp_path / "cache.json"
        cache = ResultCache(cache_path)
        lint_paths([tmp_path], cache=cache)
        cache.save()

        bad.write_text(CLEAN)
        warm = ResultCache(cache_path)
        diags = lint_paths([tmp_path], cache=warm)
        assert diags == []
        assert warm.misses >= 2  # content hash changed everywhere

    def test_prune_drops_deleted_files(self, tmp_path):
        bad = write(tmp_path, "bad.py", BAD)
        write(tmp_path, "ok.py", CLEAN)
        cache = ResultCache(tmp_path / "cache.json")
        lint_paths([tmp_path], cache=cache)
        bad.unlink()
        lint_paths([tmp_path], cache=cache)
        cache.save()
        stored = json.loads((tmp_path / "cache.json").read_text())
        assert [Path(p).name for p in stored["files"]] == ["ok.py"]

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{definitely not json")
        write(tmp_path, "bad.py", BAD)
        diags = lint_paths([tmp_path], cache=ResultCache(cache_path))
        assert [d.rule for d in diags] == ["MUT001"]

    def test_cli_verify_cache_passes_on_honest_cache(self, tmp_path, capsys):
        write(tmp_path, "ok.py", CLEAN)
        cache = tmp_path / "cache.json"
        args = [str(tmp_path), "--no-baseline", "--cache", str(cache)]
        assert main(args) == 0
        assert main(args + ["--verify-cache"]) == 0
        assert "cache verified" in capsys.readouterr().out

    def test_cli_verify_cache_detects_poisoned_cache(self, tmp_path, capsys):
        write(tmp_path, "bad.py", BAD)
        cache_path = tmp_path / "cache.json"
        args = [str(tmp_path), "--no-baseline", "--cache", str(cache_path)]
        main(args)
        # Poison the cache: same hash, laundered (empty) diagnostics.
        stored = json.loads(cache_path.read_text())
        for entry in stored["files"].values():
            entry["diags"] = []
        cache_path.write_text(json.dumps(stored))
        assert main(args + ["--verify-cache"]) == 2
        out = capsys.readouterr().out
        assert "missing from cached run" in out
        assert "cache inconsistency" in out

    def test_cli_verify_cache_requires_cache(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--verify-cache"])


# -- SARIF --------------------------------------------------------------------


class TestSarif:
    def render(self, diagnostics, suppressed=None, root=None):
        return json.loads(
            render_sarif(diagnostics, rule_docs(), root=root,
                         suppressed=suppressed)
        )

    def test_shape_and_rule_metadata(self):
        log = self.render([diag()])
        assert log["version"] == "2.1.0"
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "crowdlint"
        ids = {rule["id"] for rule in driver["rules"]}
        assert {"DET001", "MUT001", "COMM001", "WIRE001", "ESC001",
                "OBS001", "EXH001"} <= ids
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "MUT001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 1}
        assert driver["rules"][result["ruleIndex"]]["id"] == "MUT001"

    def test_repo_relative_uris(self, tmp_path):
        found = diag(path=str(tmp_path / "pkg" / "mod.py"))
        log = self.render([found], root=tmp_path)
        location = log["runs"][0]["results"][0]["locations"][0]
        assert location["physicalLocation"]["artifactLocation"]["uri"] == (
            "pkg/mod.py"
        )

    def test_suppressed_results_marked_not_dropped(self):
        log = self.render([diag(line=9)], suppressed=[diag(line=3)])
        results = log["runs"][0]["results"]
        assert len(results) == 2
        suppressions = [r.get("suppressions") for r in results]
        # Sorted by line: the suppressed one (line 3) comes first.
        assert suppressions[0] == [
            {"kind": "external", "justification": "committed baseline"}
        ]
        assert suppressions[1] is None

    def test_stable_ordering(self):
        unordered = [
            diag(path="b.py", line=1),
            diag(path="a.py", line=9),
            diag(path="a.py", line=2, rule="DET001"),
            diag(path="a.py", line=2, rule="COMM001"),
        ]
        log = self.render(unordered)
        keys = [
            (
                r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
                r["locations"][0]["physicalLocation"]["region"]["startLine"],
                r["ruleId"],
            )
            for r in log["runs"][0]["results"]
        ]
        assert keys == sorted(keys)

    def test_cli_writes_sarif(self, tmp_path, capsys):
        write(tmp_path, "bad.py", BAD)
        target = tmp_path / "report.sarif"
        assert main([
            str(tmp_path), "--no-baseline", "--sarif", str(target),
        ]) == 1
        log = json.loads(target.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "MUT001"
        assert "SARIF report written" in capsys.readouterr().out


# -- pragmas ------------------------------------------------------------------


class TestPragmas:
    def test_multi_rule_pragma_suppresses_both(self, tmp_path):
        path = write(tmp_path, "snippet.py", """\
            import random

            def f(acc=[], r=random.random()):  # crowdlint: disable=MUT001,DET001
                return acc
        """)
        assert lint_file(path) == []

    def test_unknown_rule_name_warns(self, tmp_path):
        # Composed so this test file's own physical lines never carry
        # the bogus pragma (crowdlint lints its own test suite).
        bogus = "NOPE" + "999"
        path = write(tmp_path, "snippet.py", f"""\
            def f(acc=[]):  # crowdlint: disable=MUT001,{bogus}
                return acc
        """)
        diags = lint_file(path)
        assert [d.rule for d in diags] == ["PRAGMA"]
        assert f"unknown rule `{bogus}`" in diags[0].message

    def test_pragma_on_decorated_def(self, tmp_path):
        decorated = """\
            import functools

            @functools.lru_cache
            def f(acc=()):{pragma}
                return {default}
        """
        flagged = write(tmp_path, "flagged.py", decorated.format(
            pragma="", default="list(acc) + [1]"
        ).replace("acc=()", "acc=[]"))
        assert [d.rule for d in lint_file(flagged)] == ["MUT001"]
        suppressed = write(tmp_path, "ok.py", decorated.format(
            pragma="  # crowdlint: disable=MUT001", default="list(acc) + [1]"
        ).replace("acc=()", "acc=[]"))
        assert lint_file(suppressed) == []

    def test_project_pass_diagnostics_respect_pragmas(self, tmp_path):
        write(tmp_path, "messages.py", """\
            class StickyMessage:
                def apply(self, table):
                    self.seen = True  # crowdlint: disable=COMM001

            Message = StickyMessage | StickyMessage
        """)
        assert lint_paths([tmp_path]) == []

    def test_json_output_is_stably_ordered(self, tmp_path, capsys):
        write(tmp_path, "b.py", BAD)
        write(tmp_path, "a.py", "import random\nr = random.random()\n" + BAD)
        assert main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        keys = [
            (d["path"], d["line"], d["col"], d["rule"])
            for d in report["diagnostics"]
        ]
        assert keys == sorted(keys)
        assert report["violations"] == 3


# -- CLI surface --------------------------------------------------------------


class TestCli:
    def test_rules_reference(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "MUT001", "EXH001",
                        "COMM001", "COMM002", "WIRE001", "WIRE002",
                        "ESC001", "OBS001"):
            assert rule_id in out

    def test_warn_only_and_strict_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--warn-only", "--strict"])

    def test_escape_report_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "replica.py", """\
            class Replica:
                def send_note(self, note: str):
                    self.network.send("me", "peer", note)
        """)
        assert main([str(tmp_path), "--escape-report"]) == 0
        out = capsys.readouterr().out
        assert "[proven]" in out
        assert "1 proven alias-free, 0 flagged" in out

    def test_escape_report_flagged_tree_exits_one(self, tmp_path, capsys):
        write(tmp_path, "replica.py", """\
            class Replica:
                def __init__(self):
                    self.rows: list = []

                def leak(self):
                    self.network.send("me", "peer", self.rows)
        """)
        assert main([str(tmp_path), "--escape-report"]) == 1
        assert "[flagged]" in capsys.readouterr().out

    def test_select_accepts_new_rules(self, tmp_path):
        write(tmp_path, "ok.py", CLEAN)
        assert main([
            str(tmp_path), "--no-baseline",
            "--select", "COMM001,WIRE001,ESC001,OBS001",
        ]) == 0
