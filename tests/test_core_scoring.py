"""Unit tests for scoring functions."""

import pytest

from repro.core import (
    DefaultScoring,
    ScoringError,
    ThresholdScoring,
    validate_scoring,
)
from repro.core.scoring import (
    CallableScoring,
    scoring_from_dict,
    scoring_to_dict,
)


def test_default_scoring():
    f = DefaultScoring()
    assert f.score(0, 0) == 0
    assert f.score(3, 1) == 2
    assert f.score(1, 3) == -2


def test_threshold_scoring_shortcut():
    """The paper's majority-of-three-with-shortcut running example."""
    f = ThresholdScoring(2)
    assert f.score(0, 0) == 0
    assert f.score(1, 0) == 0  # below threshold: undecided
    assert f.score(2, 0) == 2  # two agreeing votes short-cut the third
    assert f.score(1, 1) == 0
    assert f.score(0, 2) == -2
    assert f.score(2, 1) == 1


def test_threshold_validation():
    with pytest.raises(ScoringError):
        ThresholdScoring(0)


def test_threshold_rejects_nonmonotone_thresholds():
    """min_votes >= 3 would make f(0,2)=0 but f(1,2)=-1: an upvote
    lowering the score violates the section 2.1 requirements."""
    with pytest.raises(ScoringError):
        ThresholdScoring(3)
    with pytest.raises(ScoringError):
        ThresholdScoring(5)


def test_validate_accepts_builtin():
    validate_scoring(DefaultScoring())
    validate_scoring(ThresholdScoring(1))
    validate_scoring(ThresholdScoring(2))


def test_validate_rejects_nonzero_origin():
    with pytest.raises(ScoringError):
        validate_scoring(CallableScoring(lambda u, d: u - d + 1))


def test_validate_rejects_nonmonotone_in_upvotes():
    with pytest.raises(ScoringError):
        validate_scoring(CallableScoring(lambda u, d: -u))


def test_validate_rejects_nonmonotone_in_downvotes():
    with pytest.raises(ScoringError):
        validate_scoring(CallableScoring(lambda u, d: u + d if d else 0))


def test_callable_scoring_adapts():
    f = CallableScoring(lambda u, d: 2 * u - d, name="double-up")
    assert f.score(2, 1) == 3
    validate_scoring(f)
    assert "double-up" in repr(f)


def test_scoring_dict_roundtrip():
    for scoring in (DefaultScoring(), ThresholdScoring(1), ThresholdScoring(2)):
        restored = scoring_from_dict(scoring_to_dict(scoring))
        for u in range(4):
            for d in range(4):
                assert restored.score(u, d) == scoring.score(u, d)


def test_scoring_dict_unknown_kind():
    with pytest.raises(ScoringError):
        scoring_from_dict({"kind": "martian"})


def test_scoring_dict_rejects_callable():
    with pytest.raises(ScoringError):
        scoring_to_dict(CallableScoring(lambda u, d: u - d))
