"""Run the docstring examples as tests — documentation that executes."""

import doctest

import pytest

import repro.client.worker_client
import repro.constraints.template
import repro.core.schema
import repro.core.row
import repro.docstore.collection
import repro.docstore.database
import repro.net.network
import repro.server.frontend
import repro.sim.kernel
import repro.sim.rng

MODULES = [
    repro.sim.kernel,
    repro.sim.rng,
    repro.net.network,
    repro.docstore.collection,
    repro.docstore.database,
    repro.core.schema,
    repro.core.row,
    repro.constraints.template,
    repro.client.worker_client,
    repro.server.frontend,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
