"""scripts/perf_gate.py must degrade gracefully on baseline problems.

The gate's contract: a missing or malformed committed baseline skips
the measurement with a clear one-line message and exit 0 — never a
traceback, never a build failure — whatever REPRO_PERF_GATE says.
These tests exercise every failure shape through ``load_baseline`` and
through ``main`` itself (with both baselines pointed at bad paths so
the expensive probes never run).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GATE_PATH = REPO_ROOT / "scripts" / "perf_gate.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("perf_gate", GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLoadBaseline:
    def test_missing_file(self, gate, tmp_path):
        data, problem = gate.load_baseline(str(tmp_path / "nope.json"), "P5")
        assert data is None
        assert "not found" in problem and "nope.json" in problem

    def test_invalid_json(self, gate, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        data, problem = gate.load_baseline(str(path), "P5")
        assert data is None
        assert "not valid JSON" in problem
        assert "re-generate" in problem

    def test_wrong_top_level_shape(self, gate, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        data, problem = gate.load_baseline(str(path), "P6")
        assert data is None
        assert "malformed" in problem and "list" in problem

    def test_valid_baseline_round_trips(self, gate, tmp_path):
        path = tmp_path / "ok.json"
        payload = {"msgs_per_sec": {"500": 1000.0}}
        path.write_text(json.dumps(payload))
        data, problem = gate.load_baseline(str(path), "P5")
        assert problem is None
        assert data == payload


class TestMainBaselineHandling:
    """main() with bad baselines: exit 0 + clear message, no traceback.

    All baseline paths point into tmp_path so neither the real P5
    measurement nor the P6/P7 probes run (they are seconds-slow).
    """

    def _run(self, gate, capsys, p5, p6, p7):
        code = gate.main(
            baseline_path=str(p5),
            p6_baseline_path=str(p6),
            p7_baseline_path=str(p7),
        )
        return code, capsys.readouterr().out

    def test_missing_baselines_skip_cleanly(self, gate, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_PERF_GATE", "strict")
        code, out = self._run(
            gate, capsys,
            tmp_path / "p5.json", tmp_path / "p6.json", tmp_path / "p7.json",
        )
        assert code == 0
        assert "perf-gate: P5 baseline p5.json not found" in out
        assert "perf-gate[P6]: P6 baseline p6.json not found" in out
        assert "perf-gate[P7]: P7 baseline p7.json not found" in out
        assert "Traceback" not in out

    def test_malformed_json_skips_cleanly(self, gate, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_PERF_GATE", "advisory")
        p5 = tmp_path / "p5.json"
        p5.write_text("{truncated")
        p6 = tmp_path / "p6.json"
        p6.write_text("null")
        p7 = tmp_path / "p7.json"
        p7.write_text("[]")
        code, out = self._run(gate, capsys, p5, p6, p7)
        assert code == 0
        assert "not valid JSON" in out
        assert "malformed" in out  # P6: null / P7: [] are not objects

    def test_wrong_structure_skips_cleanly(self, gate, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_PERF_GATE", "strict")
        p5 = tmp_path / "p5.json"
        p5.write_text(json.dumps({"msgs_per_sec": {}}))  # no n=500 entry
        p6 = tmp_path / "p6.json"
        p6.write_text(json.dumps({"configs": {}}))  # no gate config
        p7 = tmp_path / "p7.json"
        p7.write_text(json.dumps({"configs": {"gate": {}}}))  # empty gate
        code, out = self._run(gate, capsys, p5, p6, p7)
        assert code == 0
        assert "no msgs_per_sec entry" in out
        assert "perf-gate[P6]: baseline is missing the gate config" in out
        assert "perf-gate[P7]: baseline is missing the gate config" in out

    def test_off_mode_short_circuits(self, gate, tmp_path, capsys,
                                     monkeypatch):
        monkeypatch.setenv("REPRO_PERF_GATE", "off")
        code, out = self._run(
            gate, capsys,
            tmp_path / "a.json", tmp_path / "b.json", tmp_path / "c.json",
        )
        assert code == 0
        assert "REPRO_PERF_GATE=off" in out
