"""Unit tests for replicas: local operations and preconditions."""

import pytest

from repro.core import OperationError, Replica, RowValue, ThresholdScoring
from repro.core.schema import soccer_player_schema


@pytest.fixture
def replica():
    return Replica("c1", soccer_player_schema(), ThresholdScoring(2))


def complete_row(replica):
    message = replica.insert()
    row_id = message.row_id
    for column, value in [
        ("name", "Messi"),
        ("nationality", "Argentina"),
        ("position", "FW"),
        ("caps", 83),
        ("goals", 37),
    ]:
        row_id = replica.fill(row_id, column, value).new_id
    return row_id


def test_insert_generates_prefixed_unique_ids(replica):
    first = replica.insert()
    second = replica.insert()
    assert first.row_id != second.row_id
    assert first.row_id.startswith("c1#")


def test_fill_replaces_row(replica):
    row_id = replica.insert().row_id
    message = replica.fill(row_id, "name", "Messi")
    assert message.old_id == row_id
    assert message.new_id != row_id
    assert message.value == RowValue({"name": "Messi"})
    assert message.column == "name"
    assert message.filled_value == "Messi"
    assert row_id not in replica.table
    assert replica.row(message.new_id).value == RowValue({"name": "Messi"})


def test_fill_unknown_row_rejected(replica):
    with pytest.raises(OperationError):
        replica.fill("ghost", "name", "X")


def test_fill_filled_column_rejected(replica):
    row_id = replica.insert().row_id
    new_id = replica.fill(row_id, "name", "X").new_id
    with pytest.raises(OperationError):
        replica.fill(new_id, "name", "Y")


def test_fill_validates_schema(replica):
    row_id = replica.insert().row_id
    with pytest.raises(OperationError):
        replica.fill(row_id, "caps", "eighty")
    with pytest.raises(OperationError):
        replica.fill(row_id, "position", "STRIKER")


def test_upvote_requires_complete_row(replica):
    row_id = replica.insert().row_id
    partial_id = replica.fill(row_id, "name", "X").new_id
    with pytest.raises(OperationError):
        replica.upvote(partial_id)


def test_upvote_complete_row(replica):
    row_id = complete_row(replica)
    message = replica.upvote(row_id)
    assert replica.row(row_id).upvotes == 1
    assert not message.auto


def test_auto_upvote_flag(replica):
    row_id = complete_row(replica)
    assert replica.upvote(row_id, auto=True).auto


def test_downvote_requires_partial_row(replica):
    row_id = replica.insert().row_id
    with pytest.raises(OperationError):
        replica.downvote(row_id)  # empty rows cannot be downvoted


def test_downvote_partial_row(replica):
    row_id = replica.insert().row_id
    partial_id = replica.fill(row_id, "name", "X").new_id
    replica.downvote(partial_id)
    assert replica.row(partial_id).downvotes == 1


def test_downvote_unknown_row_rejected(replica):
    with pytest.raises(OperationError):
        replica.downvote("ghost")


def test_upvote_value_requires_complete(replica):
    with pytest.raises(OperationError):
        replica.upvote_value(RowValue({"name": "X"}))


def test_local_op_equals_message_processing():
    """The section 2.4 equivalence: applying a local operation leaves
    the same state as processing its message at another replica."""
    schema = soccer_player_schema()
    ours = Replica("c1", schema, ThresholdScoring(2))
    theirs = Replica("server", schema, ThresholdScoring(2))

    messages = [ours.insert()]
    row_id = messages[0].row_id
    for column, value in [("name", "Messi"), ("nationality", "Argentina")]:
        message = ours.fill(row_id, column, value)
        messages.append(message)
        row_id = message.new_id
    messages.append(ours.downvote(row_id))

    for message in messages:
        theirs.receive(message)

    assert ours.snapshot() == theirs.snapshot()
    assert ours.table.history_snapshot() == theirs.table.history_snapshot()


def test_messages_processed_counter(replica):
    other = Replica("c2", soccer_player_schema(), ThresholdScoring(2))
    replica.receive(other.insert())
    assert replica.messages_processed == 1
