"""Unit tests for collections: CRUD, indexes, sorting."""

import pytest

from repro.docstore import Collection, DocStoreError, DuplicateKeyError


@pytest.fixture
def players():
    coll = Collection("players")
    coll.insert_many(
        [
            {"name": "Messi", "caps": 83, "country": "Argentina"},
            {"name": "Ronaldinho", "caps": 97, "country": "Brazil"},
            {"name": "Casillas", "caps": 150, "country": "Spain"},
        ]
    )
    return coll


def test_insert_assigns_string_id():
    coll = Collection("c")
    doc_id = coll.insert_one({"a": 1})
    assert isinstance(doc_id, str)
    assert coll.find_one({"_id": doc_id})["a"] == 1


def test_insert_honours_explicit_id():
    coll = Collection("c")
    assert coll.insert_one({"_id": "mine", "a": 1}) == "mine"


def test_duplicate_id_rejected():
    coll = Collection("c")
    coll.insert_one({"_id": "x"})
    with pytest.raises(DuplicateKeyError):
        coll.insert_one({"_id": "x"})


def test_non_string_id_rejected():
    with pytest.raises(DocStoreError):
        Collection("c").insert_one({"_id": 5})


def test_find_all_in_insertion_order(players):
    names = [d["name"] for d in players.find()]
    assert names == ["Messi", "Ronaldinho", "Casillas"]


def test_find_with_filter(players):
    out = players.find({"caps": {"$gt": 90}})
    assert {d["name"] for d in out} == {"Ronaldinho", "Casillas"}


def test_find_returns_copies(players):
    doc = players.find_one({"name": "Messi"})
    doc["caps"] = 0
    assert players.find_one({"name": "Messi"})["caps"] == 83


def test_find_sort_skip_limit(players):
    out = players.find(sort=[("caps", -1)], skip=1, limit=1)
    assert [d["name"] for d in out] == ["Ronaldinho"]


def test_sort_missing_fields_first():
    coll = Collection("c")
    coll.insert_many([{"a": 2}, {"b": 1}, {"a": 1}])
    out = coll.find(sort=[("a", 1)])
    assert [d.get("a") for d in out] == [None, 1, 2]


def test_projection(players):
    out = players.find({"name": "Messi"}, projection=["caps"])
    assert set(out[0]) == {"_id", "caps"}


def test_count_and_distinct(players):
    assert players.count() == 3
    assert players.count({"country": "Brazil"}) == 1
    assert players.distinct("country") == ["Argentina", "Brazil", "Spain"]


def test_update_one(players):
    modified = players.update_one({"name": "Messi"}, {"$inc": {"caps": 1}})
    assert modified == 1
    assert players.find_one({"name": "Messi"})["caps"] == 84


def test_update_one_no_match(players):
    assert players.update_one({"name": "Nobody"}, {"$set": {"x": 1}}) == 0


def test_update_one_upsert():
    coll = Collection("c")
    coll.update_one({"name": "New"}, {"$set": {"caps": 1}}, upsert=True)
    assert coll.find_one({"name": "New"})["caps"] == 1


def test_update_many(players):
    modified = players.update_many({}, {"$set": {"seen": True}})
    assert modified == 3
    assert players.count({"seen": True}) == 3


def test_update_cannot_change_id(players):
    with pytest.raises(DocStoreError):
        players.update_one({"name": "Messi"}, {"$set": {"_id": "other"}})


def test_replace_one(players):
    players.replace_one({"name": "Messi"}, {"name": "Messi", "caps": 90})
    doc = players.find_one({"name": "Messi"})
    assert doc["caps"] == 90
    assert "country" not in doc


def test_delete_one_and_many(players):
    assert players.delete_one({"name": "Messi"}) == 1
    assert players.count() == 2
    assert players.delete_many({}) == 2
    assert players.count() == 0


def test_unique_index_enforced():
    coll = Collection("c")
    coll.create_index("email", unique=True)
    coll.insert_one({"email": "a@x"})
    with pytest.raises(DuplicateKeyError):
        coll.insert_one({"email": "a@x"})
    coll.insert_one({"email": "b@x"})


def test_unique_index_on_existing_violation():
    coll = Collection("c")
    coll.insert_many([{"k": 1}, {"k": 1}])
    with pytest.raises(DuplicateKeyError):
        coll.create_index("k", unique=True)


def test_unique_index_checked_on_update():
    coll = Collection("c")
    coll.create_index("k", unique=True)
    coll.insert_many([{"k": 1}, {"k": 2}])
    with pytest.raises(DuplicateKeyError):
        coll.update_one({"k": 2}, {"$set": {"k": 1}})
    # Rollback left the document unchanged.
    assert coll.count({"k": 2}) == 1


def test_index_accelerated_find_matches_scan(players):
    unindexed = players.find({"country": "Brazil"})
    players.create_index("country")
    indexed = players.find({"country": "Brazil"})
    assert indexed == unindexed


def test_index_updated_on_delete(players):
    players.create_index("country")
    players.delete_one({"country": "Brazil"})
    assert players.find({"country": "Brazil"}) == []


def test_index_with_eq_operator(players):
    players.create_index("country")
    out = players.find({"country": {"$eq": "Spain"}})
    assert len(out) == 1


def test_conflicting_index_recreation(players):
    players.create_index("country")
    with pytest.raises(DocStoreError):
        players.create_index("country", unique=True)
    players.create_index("country")  # same spec is idempotent


def test_drop_index(players):
    players.create_index("country")
    players.drop_index("country")
    assert players.index_fields() == []


def test_dump_preserves_order(players):
    dump = players.dump()
    assert [d["name"] for d in dump] == ["Messi", "Ronaldinho", "Casillas"]
