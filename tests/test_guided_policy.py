"""Tests for GuidedPolicy + recommender decline interplay."""

import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.datasets import GroundTruth, SoccerPlayerUniverse
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.server.recommender import CellRecommender
from repro.sim import RngStreams, Simulator
from repro.workers import DiligentPolicy, FillAction, WorkerProfile
from repro.workers.policy import GuidedPolicy

SCORING = ThresholdScoring(2)


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, Template.cardinality(3)
    )
    clients = []
    for i in range(2):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=RngStreams(i))
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()
    truth = SoccerPlayerUniverse(seed=1, size=40,
                                 include_dob=False).ground_truth()
    recommender = CellRecommender(backend)
    return sim, backend, clients, truth, recommender


def make_guided(truth, recommender, worker_id, knowledge=None):
    inner = DiligentPolicy(
        knowledge if knowledge is not None else truth,
        WorkerProfile(fill_accuracy=1.0),
        reference=truth,
    )
    return GuidedPolicy(inner, recommender, worker_id)


def test_guided_worker_follows_recommended_row(world):
    sim, backend, clients, truth, recommender = world
    policy = make_guided(truth, recommender, "w0")
    recommendation = recommender.recommend_for("w0")
    action = policy.choose(clients[0], random.Random(0))
    assert isinstance(action, FillAction)
    assert clients[0].resolve_row(action.row_id) == clients[0].resolve_row(
        recommendation.row_id
    )


def test_guided_worker_declines_unknown_entity_row(world):
    """A worker with no knowledge cannot act on any recommendation;
    every advised row is handed back (declined) and the worker falls
    back to its own (idle) judgement."""
    sim, backend, clients, truth, recommender = world
    empty = GroundTruth(truth.schema, [])
    # Pin an entity into a row so it is identified but unknown to w0.
    entity = truth.rows[0]
    row_id = clients[1].replica.table.row_ids()[0]
    clients[1].fill(row_id, "name", entity["name"])
    sim.run()
    policy = make_guided(truth, recommender, "w0", knowledge=empty)
    policy.inner.reference = None  # cannot even look things up
    action = policy.choose(clients[0], random.Random(0))
    # The declined rows become available to other workers immediately.
    other = recommender.recommend_for("w1")
    assert other is not None


def test_declined_pair_not_readvised(world):
    sim, backend, clients, truth, recommender = world
    first = recommender.recommend_for("w0")
    recommender.decline("w0")
    second = recommender.recommend_for("w0")
    assert second is None or second.row_id != first.row_id


def test_assignment_ttl_expires(world):
    sim, backend, clients, truth, recommender = world
    recommender.assignment_ttl = 5.0
    first = recommender.recommend_for("w0")
    # w1 cannot take w0's row while the assignment is fresh.
    other = recommender.recommend_for("w1")
    assert other.row_id != first.row_id
    sim.schedule(10.0, lambda: None)
    sim.run()
    recommender.decline("w1")
    # After the TTL, w0's stale claim no longer blocks anyone.
    renewed = recommender.recommend_for("w1")
    assert renewed is not None


def test_guided_note_fill_delegates_focus(world):
    sim, backend, clients, truth, recommender = world
    policy = make_guided(truth, recommender, "w0")
    action = policy.choose(clients[0], random.Random(0))
    new_id = clients[0].fill(action.row_id, action.column, action.value)
    policy.note_fill(clients[0], new_id)
    assert policy.inner._focus_row_id == new_id
