"""Unit tests for named RNG streams."""

from repro.sim import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(42).stream("x")
    b = RngStreams(42).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    streams = RngStreams(42)
    a = streams.stream("a")
    b = streams.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngStreams(1).stream("x")
    b = RngStreams(2).stream("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    streams = RngStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_stream_independence_of_creation_order():
    forward = RngStreams(9)
    first = forward.stream("one").random()
    forward.stream("two")

    backward = RngStreams(9)
    backward.stream("two")
    assert backward.stream("one").random() == first


def test_fork_is_deterministic_and_distinct():
    parent = RngStreams(5)
    child_a = parent.fork("child")
    child_b = RngStreams(5).fork("child")
    assert child_a.master_seed == child_b.master_seed
    assert child_a.master_seed != parent.master_seed
    assert (
        child_a.stream("x").random() == child_b.stream("x").random()
    )


def test_master_seed_property():
    assert RngStreams(123).master_seed == 123
