"""Unit tests for the aggregation pipeline."""

import pytest

from repro.docstore import Collection, QueryError
from repro.docstore.aggregate import run_pipeline

DOCS = [
    {"worker": "w0", "kind": "fill", "t": 10.0, "n": 3},
    {"worker": "w0", "kind": "upvote", "t": 20.0, "n": 1},
    {"worker": "w1", "kind": "fill", "t": 15.0, "n": 2},
    {"worker": "w1", "kind": "fill", "t": 25.0, "n": 4},
    {"worker": "w2", "kind": "downvote", "t": 30.0},
]


def test_match_stage():
    out = run_pipeline(DOCS, [{"$match": {"kind": "fill"}}])
    assert len(out) == 3


def test_sort_skip_limit():
    out = run_pipeline(
        DOCS, [{"$sort": [("t", -1)]}, {"$skip": 1}, {"$limit": 2}]
    )
    assert [d["t"] for d in out] == [25.0, 20.0]


def test_project():
    out = run_pipeline(DOCS, [{"$project": {"worker": 1}}])
    assert all(set(d) <= {"worker", "_id"} for d in out)


def test_group_count_and_sum():
    out = run_pipeline(
        DOCS,
        [{"$group": {
            "_id": "$worker",
            "actions": {"$count": 1},
            "total_n": {"$sum": "$n"},
        }}],
    )
    by_worker = {d["_id"]: d for d in out}
    assert by_worker["w0"]["actions"] == 2
    assert by_worker["w1"]["total_n"] == 6
    assert by_worker["w2"]["total_n"] == 0  # missing field sums to 0


def test_group_sum_literal_counts():
    out = run_pipeline(DOCS, [{"$group": {"_id": None, "n": {"$sum": 1}}}])
    assert out == [{"_id": None, "n": 5}]


def test_group_min_max_avg():
    out = run_pipeline(
        DOCS,
        [{"$group": {
            "_id": "$worker",
            "first": {"$min": "$t"},
            "last": {"$max": "$t"},
            "avg_n": {"$avg": "$n"},
        }}],
    )
    by_worker = {d["_id"]: d for d in out}
    assert by_worker["w1"]["first"] == 15.0
    assert by_worker["w1"]["last"] == 25.0
    assert by_worker["w1"]["avg_n"] == pytest.approx(3.0)
    assert by_worker["w2"]["avg_n"] is None


def test_group_push_and_add_to_set():
    out = run_pipeline(
        DOCS,
        [{"$group": {
            "_id": None,
            "kinds": {"$addToSet": "$kind"},
            "all_kinds": {"$push": "$kind"},
        }}],
    )
    assert sorted(out[0]["kinds"]) == ["downvote", "fill", "upvote"]
    assert len(out[0]["all_kinds"]) == 5


def test_group_first_last():
    out = run_pipeline(
        DOCS,
        [{"$sort": [("t", 1)]},
         {"$group": {"_id": None, "first_kind": {"$first": "$kind"},
                     "last_kind": {"$last": "$kind"}}}],
    )
    assert out[0]["first_kind"] == "fill"
    assert out[0]["last_kind"] == "downvote"


def test_group_preserves_first_seen_order():
    out = run_pipeline(DOCS, [{"$group": {"_id": "$worker",
                                          "n": {"$count": 1}}}])
    assert [d["_id"] for d in out] == ["w0", "w1", "w2"]


def test_unknown_stage_rejected():
    with pytest.raises(QueryError):
        run_pipeline(DOCS, [{"$teleport": {}}])


def test_group_requires_id():
    with pytest.raises(QueryError):
        run_pipeline(DOCS, [{"$group": {"n": {"$count": 1}}}])


def test_bad_accumulator_rejected():
    with pytest.raises(QueryError):
        run_pipeline(DOCS, [{"$group": {"_id": None, "x": {"$median": "$n"}}}])
    with pytest.raises(QueryError):
        run_pipeline(DOCS, [{"$group": {"_id": None, "x": 5}}])


def test_multi_operator_stage_rejected():
    with pytest.raises(QueryError):
        run_pipeline(DOCS, [{"$match": {}, "$limit": 1}])


def test_collection_aggregate_entry_point():
    coll = Collection("t")
    coll.insert_many(DOCS)
    out = coll.aggregate([
        {"$match": {"kind": "fill"}},
        {"$group": {"_id": "$worker", "fills": {"$count": 1}}},
        {"$sort": [("fills", -1)]},
    ])
    assert out[0] == {"_id": "w1", "fills": 2}


def test_dotted_group_key():
    docs = [{"m": {"type": "a"}}, {"m": {"type": "a"}}, {"m": {"type": "b"}}]
    out = run_pipeline(docs, [{"$group": {"_id": "$m.type",
                                          "n": {"$count": 1}}}])
    assert {d["_id"]: d["n"] for d in out} == {"a": 2, "b": 1}
