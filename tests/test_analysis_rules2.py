"""The crowdlint 2.0 rule families: commit-path commutativity (COMM),
wire-codec completeness (WIRE), aliasing escapes at send sites (ESC),
observability-guard discipline (OBS), and the shard-layer extension of
the EXH001 exhaustiveness check.

Two acceptance fixtures live here: WIRE001 must catch a deliberately
unencoded ``ExchangeBatch`` field, and the ESC001 send-site report over
the real tree must contain proven-alias-free sites."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import (
    ExhaustivenessConfig,
    Project,
    analyze_escapes,
    check_exhaustiveness,
    escape_report,
    lint_file,
)
from repro.analysis.codec import check_codecs
from repro.analysis.commutativity import check_commutativity

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files: dict[str, str]) -> Project:
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return Project.load(paths)


def lint_snippet(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path)


# -- COMM001/COMM002: commit-path commutativity -------------------------------


def test_comm001_flags_module_state_in_apply(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            CACHE = {}

            class NoteMessage:
                def apply(self, table):
                    CACHE["last"] = 1

            Message = NoteMessage | NoteMessage
        """,
    })
    diags = check_commutativity(project)
    assert any(d.rule == "COMM001" for d in diags)
    assert any("CACHE" in d.message for d in diags)


def test_comm001_flags_message_self_mutation(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            class StickyMessage:
                def apply(self, table):
                    self.seen = True

            Message = StickyMessage | StickyMessage
        """,
    })
    diags = check_commutativity(project)
    assert [d.rule for d in diags] == ["COMM001"]
    assert "mutates the message object" in diags[0].message


def test_comm002_flags_randomness_in_apply(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            import random

            class ShuffleMessage:
                def apply(self, table):
                    random.shuffle(table.rows)

            Message = ShuffleMessage | ShuffleMessage
        """,
    })
    diags = check_commutativity(project)
    assert [d.rule for d in diags] == ["COMM002"]
    assert "randomness" in diags[0].message


def test_comm002_chases_annotated_table_parameter(tmp_path):
    """The closure must follow ``table.apply_*`` through the parameter's
    class annotation into the table method, where the order-dependent
    read lives."""
    project = make_project(tmp_path, {
        "messages.py": """\
            class CandidateTable:
                def apply_note(self):
                    self.count = len(self.trace)

            class NoteMessage:
                def apply(self, table: CandidateTable):
                    table.apply_note()

            Message = NoteMessage | NoteMessage
        """,
    })
    diags = check_commutativity(project)
    assert [d.rule for d in diags] == ["COMM002"]
    assert "len(...trace)" in diags[0].message


def test_comm002_flags_order_counter_read(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            class CandidateTable:
                def apply_tag(self):
                    return self._seq

            class TagMessage:
                def apply(self, table: CandidateTable):
                    table.apply_tag()

            Message = TagMessage | TagMessage
        """,
    })
    diags = check_commutativity(project)
    assert [d.rule for d in diags] == ["COMM002"]
    assert "order counter self._seq" in diags[0].message


def test_comm_clean_handler_passes(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            class CandidateTable:
                def apply_good(self, message):
                    self.rows = dict(self.rows)

            class GoodMessage:
                def apply(self, table: CandidateTable):
                    table.apply_good(self)

            Message = GoodMessage | GoodMessage
        """,
    })
    assert check_commutativity(project) == []


def test_comm_no_union_no_findings(tmp_path):
    project = make_project(tmp_path, {"plain.py": "x = 1\n"})
    assert check_commutativity(project) == []


# -- WIRE001/WIRE002: codec completeness --------------------------------------


CLEAN_MESSAGES = """\
    from typing import Union

    class PingMessage:
        token: str

        def apply(self, table):
            table.apply_ping(self.token)

        def to_dict(self):
            return {"type": "ping", "token": self.token}

    Message = Union[PingMessage, PingMessage]

    def message_from_dict(data):
        if data["type"] == "ping":
            return PingMessage(token=data["token"])
        raise ValueError(data["type"])
"""


def codec_source(batch_kwargs: str) -> str:
    return textwrap.dedent(f"""\
        from dataclasses import dataclass
        from messages import PingMessage

        @dataclass(frozen=True)
        class ExchangeBatch:
            shard_id: int
            ops: tuple
            codec_version: int = 1

        @dataclass(frozen=True)
        class ShardCommit:
            shard_id: int
            lseq: int

        def encode_exchange(shard_id, ops):
            encoded = []
            for message in ops:
                if isinstance(message, PingMessage):
                    encoded.append(("ping", message.token))
            return ExchangeBatch({batch_kwargs})

        def decode_exchange(batch):
            commits = []
            for lseq, op in enumerate(batch.ops):
                if op[0] == "ping":
                    commits.append((
                        PingMessage(token=op[1]),
                        ShardCommit(shard_id=batch.shard_id, lseq=lseq),
                    ))
            return commits
    """)


def test_wire001_catches_unencoded_exchange_batch_field(tmp_path):
    """The acceptance fixture: ``codec_version`` has a default, so the
    code runs fine — but the field never crosses the wire, and WIRE001
    must say so."""
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "shardcodec.py": codec_source("shard_id, tuple(encoded)"),
    })
    diags = check_codecs(project)
    assert [d.rule for d in diags] == ["WIRE001"]
    assert "without field `codec_version`" in diags[0].message


def test_wire001_complete_codec_is_clean(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "shardcodec.py": codec_source(
            "shard_id, tuple(encoded), codec_version=1"
        ),
    })
    assert check_codecs(project) == []


def test_wire001_flags_encode_branch_dropping_a_field(tmp_path):
    broken = codec_source("shard_id, tuple(encoded), codec_version=1").replace(
        'encoded.append(("ping", message.token))',
        'encoded.append(("ping",))',
    )
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "shardcodec.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE001" and "never reads `.token`" in d.message
        for d in diags
    )


def test_wire001_flags_decode_dropping_a_field(tmp_path):
    broken = codec_source("shard_id, tuple(encoded), codec_version=1").replace(
        "PingMessage(token=op[1])", "PingMessage()"
    )
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "shardcodec.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE001"
        and "reconstructs PingMessage without field `token`" in d.message
        for d in diags
    )


def test_wire002_flags_incomplete_to_dict_and_from_dict(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            from typing import Union

            class PingMessage:
                token: str

                def apply(self, table):
                    table.apply_ping(self.token)

                def to_dict(self):
                    return {"type": "ping"}

            Message = Union[PingMessage, PingMessage]

            def message_from_dict(data):
                if data["type"] == "ping":
                    return PingMessage()
                raise ValueError(data["type"])
        """,
    })
    diags = check_codecs(project)
    messages = [d.message for d in diags if d.rule == "WIRE002"]
    assert any("emits no `token` key" in m for m in messages)
    assert any(
        "reconstructs PingMessage without field `token`" in m
        for m in messages
    )


def test_wire002_key_without_read_is_flagged(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": """\
            from typing import Union

            class PingMessage:
                token: str

                def apply(self, table):
                    table.apply_ping(self.token)

                def to_dict(self):
                    return {"type": "ping", "token": "hardcoded"}

            Message = Union[PingMessage, PingMessage]

            def message_from_dict(data):
                if data["type"] == "ping":
                    return PingMessage(token=data["token"])
                raise ValueError(data["type"])
        """,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002" and "never reads self.token" in d.message
        for d in diags
    )


def test_wire002_real_messages_module_is_clean():
    files = list((REPO_ROOT / "src" / "repro" / "core").glob("*.py"))
    project = Project.load(files)
    assert [d for d in check_codecs(project) if d.rule == "WIRE002"] == []


# -- WIRE002 over the CDC wire module -----------------------------------------


CDC_WIRE = """\
    from dataclasses import dataclass
    from messages import message_from_dict

    @dataclass(frozen=True)
    class Cut:
        position: int
        counts: tuple

        def to_dict(self):
            return {"position": self.position, "counts": list(self.counts)}

    @dataclass(frozen=True)
    class ChangeEvent:
        position: int
        shard_id: int
        message: object

        def to_dict(self):
            return {
                "position": self.position,
                "shard_id": self.shard_id,
                "message": self.message.to_dict(),
            }

    @dataclass(frozen=True)
    class SnapshotChunk:
        namespace: str
        entries: tuple
        low: Cut
        high: Cut

        def to_dict(self):
            return {
                "namespace": self.namespace,
                "entries": list(self.entries),
                "low": self.low.to_dict(),
                "high": self.high.to_dict(),
            }

    def change_event_from_dict(data):
        return ChangeEvent(
            position=data["position"],
            shard_id=data["shard_id"],
            message=message_from_dict(data["message"]),
        )

    def cut_from_dict(data):
        return Cut(position=data["position"], counts=tuple(data["counts"]))

    def chunk_from_dict(data):
        return SnapshotChunk(
            namespace=data["namespace"],
            entries=tuple(data["entries"]),
            low=cut_from_dict(data["low"]),
            high=cut_from_dict(data["high"]),
        )
"""


def test_wire002_clean_cdc_module_passes(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "cdcevents.py": CDC_WIRE,
    })
    assert check_codecs(project) == []


def test_wire002_flags_cdc_to_dict_dropping_a_field(tmp_path):
    broken = CDC_WIRE.replace('"shard_id": self.shard_id,\n', "")
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "cdcevents.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002"
        and "ChangeEvent.to_dict() emits no `shard_id` key" in d.message
        for d in diags
    )


def test_wire002_flags_cdc_key_without_read(tmp_path):
    broken = CDC_WIRE.replace(
        '"position": self.position, "counts": list(self.counts)',
        '"position": self.position, "counts": []',
    )
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "cdcevents.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002"
        and "Cut.to_dict() never reads self.counts" in d.message
        for d in diags
    )


def test_wire002_flags_cdc_decoder_dropping_a_field(tmp_path):
    broken = CDC_WIRE.replace('high=cut_from_dict(data["high"]),\n', "")
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "cdcevents.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002"
        and "chunk_from_dict reconstructs SnapshotChunk without field "
        "`high`" in d.message
        for d in diags
    )


def test_wire002_real_cdc_module_is_clean():
    files = list((REPO_ROOT / "src" / "repro" / "core").glob("*.py"))
    files += list((REPO_ROOT / "src" / "repro" / "cdc").glob("*.py"))
    project = Project.load(files)
    assert [d for d in check_codecs(project) if d.rule == "WIRE002"] == []


# -- WIRE002 over the WAL record codec ----------------------------------------


WAL_WIRE = """\
    from dataclasses import dataclass
    from messages import message_from_dict

    @dataclass(frozen=True)
    class WalRecord:
        shard_id: int
        lseq: int
        worker_id: str
        timestamp: float
        message: object

        def to_dict(self):
            return {
                "shard_id": self.shard_id,
                "lseq": self.lseq,
                "worker_id": self.worker_id,
                "timestamp": self.timestamp,
                "message": self.message.to_dict(),
            }

    def wal_record_from_dict(data):
        return WalRecord(
            shard_id=data["shard_id"],
            lseq=data["lseq"],
            worker_id=data["worker_id"],
            timestamp=data["timestamp"],
            message=message_from_dict(data["message"]),
        )
"""


def test_wire002_clean_wal_module_passes(tmp_path):
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "walcodec.py": WAL_WIRE,
    })
    assert check_codecs(project) == []


def test_wire002_flags_wal_to_dict_dropping_a_field(tmp_path):
    """Acceptance fixture: a deliberately unencoded WalRecord field —
    here the origin ``lseq`` coordinate, whose loss would corrupt the
    recovered prefix vector — must be flagged."""
    broken = WAL_WIRE.replace('"lseq": self.lseq,\n', "")
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "walcodec.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002"
        and "WalRecord.to_dict() emits no `lseq` key" in d.message
        and "dropped from the WAL wire format" in d.message
        for d in diags
    )


def test_wire002_flags_wal_key_without_read(tmp_path):
    broken = WAL_WIRE.replace(
        '"worker_id": self.worker_id,', '"worker_id": "w",'
    )
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "walcodec.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002"
        and "WalRecord.to_dict() never reads self.worker_id" in d.message
        for d in diags
    )


def test_wire002_flags_wal_decoder_dropping_a_field(tmp_path):
    broken = WAL_WIRE.replace('timestamp=data["timestamp"],\n', "")
    project = make_project(tmp_path, {
        "messages.py": CLEAN_MESSAGES,
        "walcodec.py": broken,
    })
    diags = check_codecs(project)
    assert any(
        d.rule == "WIRE002"
        and "wal_record_from_dict reconstructs WalRecord without field "
        "`timestamp`" in d.message
        for d in diags
    )


def test_wire002_real_wal_module_is_clean():
    files = list((REPO_ROOT / "src" / "repro" / "core").glob("*.py"))
    files += list((REPO_ROOT / "src" / "repro" / "cdc").glob("*.py"))
    files += list((REPO_ROOT / "src" / "repro" / "durability").glob("*.py"))
    project = Project.load(files)
    assert [d for d in check_codecs(project) if d.rule == "WIRE002"] == []


# -- ESC001: aliasing escapes at send sites -----------------------------------


ESC_FIXTURE = {
    "replica.py": """\
        class Replica:
            def __init__(self, network):
                self.rows: list = []
                self.network = network

            def leak(self):
                self.network.send("me", "peer", self.rows)

            def ok(self, note: str):
                self.network.send("me", "peer", note)

            def mystery(self, payload):
                self.network.send("me", "peer", payload)
    """,
}


def test_esc001_classifies_send_sites(tmp_path):
    project = make_project(tmp_path, ESC_FIXTURE)
    diagnostics, sites = analyze_escapes(project)
    status_by_function = {s.function: s.status for s in sites}
    assert status_by_function == {
        "Replica.leak": "flagged",
        "Replica.ok": "proven",
        "Replica.mystery": "unknown",
    }
    assert [d.rule for d in diagnostics] == ["ESC001"]
    assert "mutable container" in diagnostics[0].message


def test_esc001_network_module_itself_is_exempt(tmp_path):
    project = make_project(tmp_path, {
        "network.py": """\
            class Network:
                def forward(self, source, dest, payload):
                    self.network.send(source, dest, payload)
        """,
    })
    diagnostics, sites = analyze_escapes(project)
    assert diagnostics == [] and sites == []


def test_escape_report_proves_real_send_sites_alias_free():
    """Acceptance: the send-site report over the shipped tree is
    non-empty, contains *proven* alias-free sites, and flags nothing."""
    sites = escape_report([REPO_ROOT / "src" / "repro"])
    assert sites, "no send sites found — the scanner lost the tree"
    proven = [s for s in sites if s.status == "proven"]
    flagged = [s for s in sites if s.status == "flagged"]
    assert proven, "\n".join(s.format() for s in sites)
    assert flagged == [], "\n".join(s.format() for s in flagged)
    # The shard exchange path is among the proven sites.
    assert any("shard" in s.path for s in proven)


# -- OBS001: observability-guard discipline -----------------------------------


def test_obs001_flags_unguarded_allocating_call(tmp_path):
    diags = lint_snippet(tmp_path, """\
        def drain(obs, batch):
            obs.inc("drain." + str(len(batch)))
    """)
    assert [d.rule for d in diags] == ["OBS001"]


def test_obs001_plain_arguments_are_exempt(tmp_path):
    assert lint_snippet(tmp_path, """\
        def drain(obs, count):
            obs.inc("drain", count)
    """) == []


def test_obs001_enabled_guard_forms(tmp_path):
    for source in (
        # Enclosing if.
        """\
        def drain(obs, batch):
            if obs.enabled:
                obs.inc("drain." + str(len(batch)))
        """,
        # Early-out.
        """\
        def drain(obs, batch):
            if not obs.enabled:
                return
            obs.inc("drain." + str(len(batch)))
        """,
        # Span-sentinel convention.
        """\
        def drain(obs, batch):
            span = obs.span("drain") if obs.enabled else None
            if span is not None:
                obs.inc("drain." + str(len(batch)))
        """,
    ):
        assert lint_snippet(tmp_path, source) == [], source


def test_obs001_pragma_suppression(tmp_path):
    diags = lint_snippet(tmp_path, """\
        def drain(obs, batch):
            obs.inc("n." + str(len(batch)))  # crowdlint: disable=OBS001
    """)
    assert diags == []


# -- EXH001 shard-layer extension ---------------------------------------------


SHARD_MESSAGES = """\
    from typing import Union


    class InsertMessage:
        def apply(self, table):
            table.apply_insert(self)

        def to_dict(self):
            return {"type": "insert"}


    Message = Union[InsertMessage, InsertMessage]


    def message_from_dict(data):
        if data["type"] == "insert":
            return InsertMessage()
        raise ValueError(data["type"])
"""

GOOD_SHARD = """\
    class ExchangeBatch:
        pass


    def encode_exchange(ops) -> ExchangeBatch:
        for op in ops:
            if isinstance(op, InsertMessage):
                pass
        return ExchangeBatch()


    class ShardServer:
        def exchange(self, peer):
            batch = encode_exchange([])
            self.network.send(self.endpoint, peer, batch)

        def on_message(self, source, payload):
            if isinstance(payload, ExchangeBatch):
                return
"""


def make_sharded_stack(tmp_path, shard_src=GOOD_SHARD):
    layout = {
        "core/messages.py": SHARD_MESSAGES,
        "core/table.py": (
            "class CandidateTable:\n"
            "    def apply_insert(self, msg):\n        pass\n"
        ),
        "server/backend.py": (
            "class BackendServer:\n"
            "    def on_message(self, source, payload):\n        pass\n"
        ),
        "client/worker_client.py": (
            "class WorkerClient:\n"
            "    def on_message(self, source, payload):\n        pass\n"
        ),
        "server/shard.py": shard_src,
    }
    for rel, source in layout.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    config = ExhaustivenessConfig.locate(tmp_path)
    assert config is not None and config.shard is not None
    return config


def test_exh001_sharded_stack_clean(tmp_path):
    assert check_exhaustiveness(make_sharded_stack(tmp_path)) == []


def test_exh001_flags_undispatched_wire_class(tmp_path):
    broken = GOOD_SHARD.replace(
        "isinstance(payload, ExchangeBatch)", "payload is None"
    )
    diags = check_exhaustiveness(make_sharded_stack(tmp_path, broken))
    assert any(
        "shard wire class ExchangeBatch is sent to peers" in d.message
        for d in diags
    )


def test_exh001_flags_encoder_missing_union_member(tmp_path):
    broken = GOOD_SHARD.replace("isinstance(op, InsertMessage)", "bool(op)")
    diags = check_exhaustiveness(make_sharded_stack(tmp_path, broken))
    assert any(
        "encode_exchange has no isinstance branch for Message union "
        "member InsertMessage" in d.message
        for d in diags
    )


def test_exh001_stack_without_shard_skips_shard_checks(tmp_path):
    config = make_sharded_stack(tmp_path)
    (tmp_path / "server" / "shard.py").unlink()
    config = ExhaustivenessConfig.locate(tmp_path)
    assert config is not None and config.shard is None
    assert check_exhaustiveness(config) == []


# -- EXH001, CDC layer --------------------------------------------------------


GOOD_CDC_EVENTS = """\
    from core.messages import message_from_dict


    class ChangeEvent:
        def to_dict(self):
            return {"position": self.position, "message": self.message.to_dict()}


    def change_event_from_dict(data):
        return ChangeEvent(message=message_from_dict(data["message"]))
"""


def make_cdc_stack(tmp_path, cdc_src=GOOD_CDC_EVENTS):
    make_sharded_stack(tmp_path)
    path = tmp_path / "cdc" / "events.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(cdc_src), encoding="utf-8")
    config = ExhaustivenessConfig.locate(tmp_path)
    assert config is not None and config.cdc is not None
    return config


def test_exh001_cdc_stack_clean(tmp_path):
    assert check_exhaustiveness(make_cdc_stack(tmp_path)) == []


def test_exh001_flags_cdc_to_dict_not_delegating(tmp_path):
    broken = GOOD_CDC_EVENTS.replace(
        "self.message.to_dict()", '{"type": "insert", "row_id": self.row_id}'
    )
    diags = check_exhaustiveness(make_cdc_stack(tmp_path, broken))
    assert any(
        "ChangeEvent.to_dict must delegate the payload to "
        "self.message.to_dict()" in d.message
        for d in diags
    )


def test_exh001_flags_cdc_decode_fork(tmp_path):
    broken = GOOD_CDC_EVENTS.replace(
        'message_from_dict(data["message"])', 'dict(data["message"])'
    )
    diags = check_exhaustiveness(make_cdc_stack(tmp_path, broken))
    assert any(
        "change_event_from_dict must decode the payload via "
        "message_from_dict" in d.message
        for d in diags
    )


def test_exh001_stack_without_cdc_skips_cdc_checks(tmp_path):
    make_cdc_stack(tmp_path)
    (tmp_path / "cdc" / "events.py").unlink()
    config = ExhaustivenessConfig.locate(tmp_path)
    assert config is not None and config.cdc is None
    assert check_exhaustiveness(config) == []
