"""Unit tests for the database namespace and persistence."""

import pytest

from repro.docstore import Database, DocStoreError


def test_collection_created_on_access():
    db = Database()
    assert db.collection_names() == []
    db.collection("specs")
    assert db.collection_names() == ["specs"]


def test_collection_identity():
    db = Database()
    assert db.collection("x") is db.collection("x")


def test_invalid_collection_names():
    db = Database()
    with pytest.raises(DocStoreError):
        db.collection("")
    with pytest.raises(DocStoreError):
        db.collection("a.b")


def test_drop_collection():
    db = Database()
    db.collection("x").insert_one({"a": 1})
    db.drop_collection("x")
    assert db.collection_names() == []
    assert db.collection("x").count() == 0


def test_snapshot_roundtrip(tmp_path):
    db = Database("mydb")
    db.collection("a").insert_many([{"x": 1}, {"x": 2}])
    db.collection("b").insert_one({"y": "text"})
    path = tmp_path / "snap.json"
    db.save(path)

    restored = Database.load(path)
    assert restored.name == "mydb"
    assert restored.collection("a").count() == 2
    assert restored.collection("b").find_one({"y": "text"}) is not None


def test_snapshot_preserves_ids(tmp_path):
    db = Database()
    doc_id = db.collection("a").insert_one({"x": 1})
    path = tmp_path / "snap.json"
    db.save(path)
    restored = Database.load(path)
    assert restored.collection("a").find_one({"_id": doc_id})["x"] == 1
