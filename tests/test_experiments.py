"""Integration tests over the experiment drivers: the section 6 shapes.

One representative run (seed 7, paper defaults) is shared across the
module via a session fixture; the assertions are the qualitative claims
of section 6 — who wins, orderings, stability — not absolute numbers.
"""

import pytest

from repro.experiments import (
    CrowdFillExperiment,
    ExperimentConfig,
)
from repro.experiments.compensation import (
    comparison_from_result,
    report_from_result as compensation_report,
)
from repro.experiments.earning_rate import earning_report_from_result
from repro.experiments.effectiveness import report_from_result
from repro.experiments.estimation import accuracy_from_result
from repro.pay import AllocationScheme


@pytest.fixture(scope="module")
def result():
    return CrowdFillExperiment(ExperimentConfig(seed=7)).run()


class TestRepresentativeRun:
    def test_completes_within_paper_timescale(self, result):
        """Paper: 10m44s with five workers; we accept 5-30 simulated
        minutes for the same task shape."""
        assert result.completed
        assert 5 * 60 <= result.duration <= 30 * 60

    def test_collects_exactly_twenty_final_rows(self, result):
        assert len(result.final_values) == 20

    def test_candidate_table_slightly_larger_than_final(self, result):
        """Paper: 23 candidate rows for 20 final."""
        assert 20 < result.candidate_count <= 35

    def test_final_rows_unique_keys(self, result):
        keys = [v.key(result.schema.key_columns) for v in result.final_values]
        assert len(set(keys)) == len(keys)

    def test_final_rows_in_caps_band(self, result):
        for value in result.final_values:
            assert 80 <= value["caps"] <= 99

    def test_high_accuracy(self, result):
        """Paper: all 20 final rows accurate (occasionally inaccurate
        rows in other runs)."""
        assert result.accuracy >= 0.9

    def test_some_rows_were_downvoted_away(self, result):
        assert result.heavily_downvoted_rows() >= 1

    def test_effectiveness_report_consistent(self, result):
        report = report_from_result(result)
        assert report.final_rows == 20
        assert report.candidate_rows == result.candidate_count
        assert (
            report.final_rows + report.heavily_downvoted
            + report.conflict_extras <= report.candidate_rows + 2
        )
        assert "m" in report.duration_str
        assert "final rows" in report.format_table()

    def test_action_counts_vary_widely(self, result):
        """Paper: 9 to 54 actions across the five workers."""
        actions = [w.actions for w in result.workers]
        assert max(actions) / max(1, min(actions)) >= 3


class TestCompensation:
    def test_budget_mostly_allocated(self, result):
        allocation = result.allocation(AllocationScheme.DUAL_WEIGHTED)
        assert 0.8 * 10 <= allocation.total_allocated <= 10.0
        assert allocation.unspent >= 0

    def test_wide_payout_spread_tracks_activity(self, result):
        """Paper: $0.51 to $3.49; most-active earns most."""
        report = compensation_report(result, AllocationScheme.DUAL_WEIGHTED)
        assert report.spread() >= 3
        assert report.payouts_track_actions()

    def test_all_workers_earn_something(self, result):
        allocation = result.allocation(AllocationScheme.DUAL_WEIGHTED)
        for worker in result.workers:
            assert allocation.worker_total(worker.worker_id) > 0

    def test_uniform_vs_dual_shifts_nonvoter(self, result):
        """Paper: the never-voting worker differs by >25% (uniform
        penalizes non-voters); we require the non-voter to be among the
        workers uniform treats worst."""
        comparison = comparison_from_result(result)
        non_voters = [row for row in comparison.rows if row[3] == 0]
        assert non_voters
        worker_id, dual, uniform, _ = non_voters[0]
        assert uniform < dual  # uniform penalizes the non-voter
        _, pct = comparison.max_pct_difference()
        assert pct >= 5.0
        assert "uniform" in comparison.format_table()


class TestEstimation:
    def test_corrected_beats_raw(self, result):
        """Paper Figure 5: corrected MAPE (9.9%) < raw MAPE (16.1%)."""
        accuracy = accuracy_from_result(result)
        assert accuracy.mape_corrected < accuracy.mape_raw

    def test_corrected_mape_in_paper_ballpark(self, result):
        accuracy = accuracy_from_result(result)
        assert accuracy.mape_corrected <= 30.0

    def test_estimates_positive_for_all_workers(self, result):
        accuracy = accuracy_from_result(result)
        for row in accuracy.rows:
            assert row.raw_estimate > 0
            assert row.corrected_estimate >= 0
        assert "MAPE" in accuracy.format_table()


class TestEarningRate:
    def test_weighted_no_less_stable_than_uniform(self, result):
        """Paper Figure 6: weighted allocation is somewhat steadier."""
        report = earning_report_from_result(result, num_workers=2)
        verdicts = report.weighted_more_stable()
        assert all(verdicts.values())

    def test_curves_reach_one_hundred_percent(self, result):
        report = earning_report_from_result(result, num_workers=2)
        for curve in report.curves:
            assert curve.points
            assert curve.points[-1][1] == pytest.approx(100.0)
        assert "RMS" in report.format_table()


class TestConfigKnobs:
    def test_small_run_with_spammer_still_completes(self):
        config = ExperimentConfig(
            seed=3,
            num_workers=4,
            target_rows=6,
            policy_kinds=("diligent", "diligent", "diligent", "spammer"),
        )
        result = CrowdFillExperiment(config).run()
        assert result.completed
        assert len(result.final_values) == 6
        # The spammer's garbage was kept out of the final table.
        assert result.accuracy >= 0.8

    def test_copier_profits_without_contributing_fills(self):
        config = ExperimentConfig(
            seed=5,
            num_workers=4,
            target_rows=6,
            policy_kinds=("diligent", "diligent", "diligent", "copier"),
        )
        result = CrowdFillExperiment(config).run()
        copier = result.workers[3]
        assert copier.fills == 0
        allocation = result.allocation(AllocationScheme.DUAL_WEIGHTED)
        # The section 8 threat: blind endorsement still earns money.
        assert allocation.worker_total(copier.worker_id) >= 0

    def test_values_template_prefills_rows(self):
        config = ExperimentConfig(
            seed=11,
            num_workers=3,
            target_rows=5,
            template_values=({"nationality": "Brazil"},),
        )
        result = CrowdFillExperiment(config).run()
        if result.completed:
            assert any(
                v["nationality"] == "Brazil" for v in result.final_values
            )

    def test_worker_count_is_configurable(self):
        config = ExperimentConfig(seed=2, num_workers=7, target_rows=5)
        result = CrowdFillExperiment(config).run()
        assert len(result.workers) == 7


class TestPredicatesConstraintCollection:
    def test_section6_task_as_predicates_constraint(self):
        """The paper's caps-band task expressed as the section 2.3
        predicates constraint it proposes: every final row must satisfy
        caps between{80,99}, enforced by the Central Client's
        predicates-aware PRI maintenance."""
        from repro.constraints import Template, satisfies_template

        config = ExperimentConfig(
            seed=7,
            target_rows=8,
            num_workers=4,
            predicates_template=tuple(
                {"caps": "between{80,99}"} for _ in range(8)
            ),
        )
        result = CrowdFillExperiment(config).run()
        assert result.completed
        template = Template.from_predicates(
            [{"caps": "between{80,99}"}] * 8
        )
        assert satisfies_template(result.final_values, template)
        for value in result.final_values:
            assert 80 <= value["caps"] <= 99
