"""Unit tests for budget allocation (sections 5.2.2-5.2.3)."""

import pytest

from repro.core import (
    DefaultScoring,
    DownvoteMessage,
    Replica,
    RowValue,
    TraceRecord,
    UpvoteMessage,
)
from repro.core.schema import soccer_player_schema
from repro.pay import AllocationScheme, allocate, analyze_contributions
from repro.pay.allocation import fit_z
from repro.pay.timing import generation_times, median

SCHEMA = soccer_player_schema()
FULL = {
    "name": "Messi", "nationality": "Argentina",
    "position": "FW", "caps": 83, "goals": 37,
}


class Run:
    """Master replica + trace with controllable per-action timing."""

    def __init__(self):
        self.master = Replica("server", SCHEMA, DefaultScoring())
        self.cc = Replica("CC", SCHEMA, DefaultScoring())
        self.trace = []
        self._seq = 0
        self.clock = 0.0

    def cc_insert(self):
        message = self.cc.insert()
        self.master.receive(message)
        return message.row_id

    def record(self, worker, message, at):
        self._seq += 1
        self.master.receive(message)
        self.trace.append(
            TraceRecord(seq=self._seq, timestamp=at,
                        worker_id=worker, message=message)
        )

    def fill(self, worker, row_id, column, value, at):
        replica = Replica(f"{worker}x{self._seq}", SCHEMA, DefaultScoring())
        row = self.master.table.row(row_id)
        replica.table.load_row(row_id, row.value, 0, 0)
        message = replica.fill(row_id, column, value)
        self.record(worker, message, at)
        return message.new_id

    def upvote(self, worker, value, at, auto=False):
        self.record(worker, UpvoteMessage(value=RowValue(value), auto=auto), at)

    def downvote(self, worker, value, at):
        self.record(worker, DownvoteMessage(value=RowValue(value)), at)

    def analysis(self):
        return analyze_contributions(
            SCHEMA, self.master.table.final_rows(), self.trace
        )


@pytest.fixture
def simple_run():
    """One final row: 5 fills by w1 at 10s intervals, upvote by w2."""
    run = Run()
    row_id = run.cc_insert()
    at = 0.0
    for column, value in FULL.items():
        at += 10.0
        row_id = run.fill("w1", row_id, column, value, at)
    run.upvote("w2", FULL, at + 4.0)
    return run


def test_uniform_allocation_amounts(simple_run):
    analysis = simple_run.analysis()
    result = allocate(
        SCHEMA, simple_run.trace, analysis, budget=6.0,
        scheme=AllocationScheme.UNIFORM,
    )
    # |C| = 5, |U| = 1, |D| = 0 -> b = 1.0 per cell/vote.
    # Every cell here has direct == indirect, so fills earn full 1.0.
    assert result.worker_total("w1") == pytest.approx(5.0)
    assert result.worker_total("w2") == pytest.approx(1.0)
    assert result.unspent == pytest.approx(0.0)


def test_budget_zero_allocates_nothing(simple_run):
    result = allocate(
        SCHEMA, simple_run.trace, simple_run.analysis(), budget=0.0,
        scheme=AllocationScheme.UNIFORM,
    )
    assert result.total_allocated == 0.0


def test_negative_budget_rejected(simple_run):
    with pytest.raises(ValueError):
        allocate(SCHEMA, simple_run.trace, simple_run.analysis(), budget=-1)


def test_split_override_validation(simple_run):
    with pytest.raises(ValueError):
        allocate(
            SCHEMA, simple_run.trace, simple_run.analysis(), budget=1,
            split_overrides={"name": 1.5},
        )


def test_splitting_between_direct_and_indirect():
    """w1 first-enters 'Messi' on a dying row; w2 builds the final row.
    Key column h=0.25: w2 direct gets 0.25 b_c, w1 indirect 0.75 b_c."""
    run = Run()
    dead = run.cc_insert()
    run.fill("w1", dead, "name", "Messi", 1.0)
    winner = run.cc_insert()
    row_id = winner
    at = 1.0
    for column, value in FULL.items():
        at += 10.0
        row_id = run.fill("w2", row_id, column, value, at)
    run.upvote("w3", FULL, at + 5.0)

    analysis = run.analysis()
    result = allocate(
        SCHEMA, run.trace, analysis, budget=6.0,
        scheme=AllocationScheme.UNIFORM,
    )
    # |C| = 5, |U| = 1, |D| = 0 -> b = 1.0
    # name cell: w2 direct 0.25, w1 indirect 0.75.
    assert result.worker_total("w1") == pytest.approx(0.75)
    # w2: name 0.25 + nationality(key) ... nationality's first entry is
    # w2's own -> both shares (1.0); non-key cells likewise 1.0 each.
    assert result.worker_total("w2") == pytest.approx(0.25 + 4 * 1.0)
    assert result.worker_total("w3") == pytest.approx(1.0)


def test_missing_indirect_leaves_budget_unspent():
    """First FW entry is on an incompatible row: the final row's
    position cell pays only h=0.5; (1-h) b_c goes unspent."""
    run = Run()
    other = run.cc_insert()
    other = run.fill("w1", other, "name", "Neymar", 1.0)
    run.fill("w1", other, "position", "FW", 2.0)
    winner = run.cc_insert()
    row_id = winner
    at = 2.0
    for column, value in FULL.items():
        at += 10.0
        row_id = run.fill("w2", row_id, column, value, at)
    run.upvote("w3", FULL, at + 5.0)

    result = allocate(
        SCHEMA, run.trace, run.analysis(), budget=6.0,
        scheme=AllocationScheme.UNIFORM,
    )
    # b = 1.0; the position cell pays only its 0.5 direct share.
    assert result.unspent == pytest.approx(0.5)
    assert result.worker_total("w1") == pytest.approx(0.0)


def test_column_weights_use_median_generation_times():
    """Two rows filled with distinct per-column cadences: weights equal
    the medians of contributing fills' generation times."""
    run = Run()
    at = 0.0
    for i, player in enumerate(["Messi", "Xavi"]):
        row_id = run.cc_insert()
        values = {**FULL, "name": player, "caps": 80 + i}
        for column in SCHEMA.column_names:
            # name fills take 20s, others 5s (w1's action cadence).
            at += 20.0 if column == "name" else 5.0
            row_id = run.fill("w1", row_id, column, values[column], at)
        run.upvote("w2", values, at + 3.0)

    analysis = run.analysis()
    result = allocate(
        SCHEMA, run.trace, analysis, budget=10.0,
        scheme=AllocationScheme.COLUMN_WEIGHTED,
    )
    weights = result.weights.by_column
    assert weights["name"] > weights["position"]
    # Generation time of each non-first name fill is 20s.
    assert weights["nationality"] == pytest.approx(5.0)
    assert weights["caps"] == pytest.approx(5.0)


def test_column_weighted_reduces_to_uniform_with_equal_weights(simple_run):
    analysis = simple_run.analysis()
    uniform = allocate(
        SCHEMA, simple_run.trace, analysis, budget=6.0,
        scheme=AllocationScheme.UNIFORM,
    )
    # All fills in simple_run take exactly 10s and the vote 4s; force
    # the same weight everywhere via overrides-free check on totals:
    column = allocate(
        SCHEMA, simple_run.trace, analysis, budget=6.0,
        scheme=AllocationScheme.COLUMN_WEIGHTED,
    )
    # w1's share differs only through the vote/fill weight ratio.
    assert column.worker_total("w1") > uniform.worker_total("w1")


def test_fit_z_constant_times_is_zero():
    assert fit_z([10.0, 10.0, 10.0, 10.0]) == 0.0


def test_fit_z_increasing_times_positive():
    z = fit_z([10.0, 12.0, 14.0, 16.0, 18.0])
    assert 0 < z <= 1
    # Linear times: the fitted profile is exact -> z = slope*(n-1)/(2*mean)
    assert z == pytest.approx(2.0 * 4 / (2 * 14.0))


def test_fit_z_decreasing_clamped_to_zero():
    assert fit_z([20.0, 15.0, 10.0]) == 0.0


def test_fit_z_steep_clamped_to_one():
    assert fit_z([1.0, 100.0, 200.0, 400.0]) == 1.0


def test_fit_z_degenerate_inputs():
    assert fit_z([]) == 0.0
    assert fit_z([5.0]) == 0.0


def test_dual_weighted_spreads_key_cells():
    """Key values completed later earn more when completion times grow."""
    run = Run()
    at = 0.0
    finals = []
    for i in range(4):
        row_id = run.cc_insert()
        values = {**FULL, "name": f"Player{i}", "caps": 80 + i}
        for column in SCHEMA.column_names:
            # Name entry takes progressively longer: 10, 20, 30, 40s.
            at += 10.0 * (i + 1) if column == "name" else 5.0
            row_id = run.fill("w1", row_id, column, values[column], at)
        run.upvote("w2", values, at + 3.0)
        finals.append(values)

    analysis = run.analysis()
    result = allocate(
        SCHEMA, run.trace, analysis, budget=10.0,
        scheme=AllocationScheme.DUAL_WEIGHTED,
    )
    assert result.weights.z_by_column["name"] > 0
    name_amounts = [
        amount for cell, amount in result.cell_amounts if cell.column == "name"
    ]
    # Paid in first-appearance order: strictly increasing.
    ordered = sorted(
        (cell for cell, _ in result.cell_amounts if cell.column == "name"),
        key=lambda cell: cell.direct.seq,
    )
    by_cell = {id(c): a for c, a in result.cell_amounts}
    amounts_in_order = [by_cell[id(c)] for c in ordered]
    assert amounts_in_order == sorted(amounts_in_order)
    assert amounts_in_order[0] < amounts_in_order[-1]
    # The linear spread preserves the column's total: it must equal the
    # column-weighted allocation's total for the same cells.
    column_result = allocate(
        SCHEMA, run.trace, analysis, budget=10.0,
        scheme=AllocationScheme.COLUMN_WEIGHTED,
    )
    column_name_amounts = [
        amount
        for cell, amount in column_result.cell_amounts
        if cell.column == "name"
    ]
    assert sum(name_amounts) == pytest.approx(sum(column_name_amounts))


def test_dual_equals_column_when_no_slowdown():
    """The paper's observation: without progressive slowdown (z=0),
    dual-weighted compensation equals column-weighted exactly."""
    run = Run()
    at = 0.0
    for i in range(3):
        row_id = run.cc_insert()
        values = {**FULL, "name": f"P{i}", "caps": 80 + i}
        for column in SCHEMA.column_names:
            at += 10.0  # constant cadence: no slowdown
            row_id = run.fill("w1", row_id, column, values[column], at)
        run.upvote("w2", values, at + 3.0)

    analysis = run.analysis()
    dual = allocate(SCHEMA, run.trace, analysis, 10.0,
                    AllocationScheme.DUAL_WEIGHTED)
    column = allocate(SCHEMA, run.trace, analysis, 10.0,
                      AllocationScheme.COLUMN_WEIGHTED)
    assert all(z == 0 for z in dual.weights.z_by_column.values())
    for worker in ("w1", "w2"):
        assert dual.worker_total(worker) == pytest.approx(
            column.worker_total(worker)
        )


def test_timeline_is_monotone(simple_run):
    analysis = simple_run.analysis()
    result = allocate(SCHEMA, simple_run.trace, analysis, 6.0,
                      AllocationScheme.UNIFORM)
    timeline = result.timeline_for("w1", simple_run.trace)
    assert timeline
    times = [t for t, _ in timeline]
    totals = [v for _, v in timeline]
    assert times == sorted(times)
    assert totals == sorted(totals)
    assert totals[-1] == pytest.approx(result.worker_total("w1"))


def test_generation_times_skip_first_message_and_auto_upvotes(simple_run):
    times = generation_times(simple_run.trace)
    # w1's first fill has no predecessor; the remaining 4 do.
    w1_seqs = [r.seq for r in simple_run.trace if r.worker_id == "w1"]
    assert w1_seqs[0] not in times
    assert all(seq in times for seq in w1_seqs[1:])
    assert all(times[seq] == pytest.approx(10.0) for seq in w1_seqs[1:])


def test_median_helper():
    assert median([]) is None
    assert median([3.0]) == 3.0
    assert median([1.0, 3.0]) == 2.0
    assert median([5.0, 1.0, 3.0]) == 3.0
