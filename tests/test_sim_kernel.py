"""Unit tests for the simulator kernel."""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.run() == 3
    assert fired == ["a", "b", "c"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(3.0, lambda: None)


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(sim.now)
        if depth:
            sim.schedule(1.0, lambda: chain(depth - 1))

    sim.schedule(0.0, lambda: chain(3))
    sim.run()
    assert fired == [0.0, 1.0, 2.0, 3.0]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    assert sim.run(max_events=2) == 2
    assert fired == [0, 1]


def test_step_fires_exactly_one():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.schedule(0.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_pending_events_counter():
    sim = Simulator()
    assert sim.pending_events == 0
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(7.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))
