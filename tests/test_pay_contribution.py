"""Unit tests for contribution analysis (section 5.2.1).

Traces are crafted by hand through replicas so each contribution class
is exercised precisely: direct chains, indirect first-entries, missing
indirect (first entry on an incompatible row), contributing votes.
"""

from repro.core import (
    DefaultScoring,
    DownvoteMessage,
    Replica,
    RowValue,
    TraceRecord,
    UpvoteMessage,
)
from repro.core.schema import soccer_player_schema
from repro.pay import analyze_contributions

SCHEMA = soccer_player_schema()
FULL = {
    "name": "Messi", "nationality": "Argentina",
    "position": "FW", "caps": 83, "goals": 37,
}


class Run:
    """A master replica plus a hand-rolled trace."""

    def __init__(self):
        self.master = Replica("server", SCHEMA, DefaultScoring())
        self.cc = Replica("CC", SCHEMA, DefaultScoring())
        self.trace = []
        self._seq = 0
        self._time = 0.0

    def cc_insert(self):
        message = self.cc.insert()
        self.master.receive(message)  # CC messages are NOT in the trace
        return message.row_id

    def record(self, worker, message):
        self._seq += 1
        self._time += 1.0
        self.master.receive(message)
        self.trace.append(
            TraceRecord(
                seq=self._seq, timestamp=self._time,
                worker_id=worker, message=message,
            )
        )
        return message

    def fill(self, worker, row_id, column, value):
        replica = Replica(worker + str(self._seq), SCHEMA, DefaultScoring())
        # Reconstruct the row state in a throwaway replica to generate a
        # well-formed replace message with a unique id.
        row = self.master.table.row(row_id)
        replica.table.load_row(row_id, row.value, 0, 0)
        message = replica.fill(row_id, column, value)
        self.record(worker, message)
        return message.new_id

    def upvote(self, worker, value, auto=False):
        self.record(worker, UpvoteMessage(value=RowValue(value), auto=auto))

    def downvote(self, worker, value):
        self.record(worker, DownvoteMessage(value=RowValue(value)))

    def analyze(self):
        return analyze_contributions(
            SCHEMA, self.master.table.final_rows(), self.trace
        )


def test_direct_contribution_one_per_cell():
    run = Run()
    row_id = run.cc_insert()
    for column, value in FULL.items():
        row_id = run.fill("w1", row_id, column, value)
    run.upvote("w2", FULL)

    analysis = run.analyze()
    assert analysis.cell_count == 5
    assert all(cell.direct.worker_id == "w1" for cell in analysis.cells)
    columns = {cell.column for cell in analysis.cells}
    assert columns == set(SCHEMA.column_names)


def test_direct_equals_indirect_for_first_enterer():
    run = Run()
    row_id = run.cc_insert()
    for column, value in FULL.items():
        row_id = run.fill("w1", row_id, column, value)
    run.upvote("w2", FULL)

    for cell in run.analyze().cells:
        assert cell.indirect is not None
        assert cell.indirect.seq == cell.direct.seq


def test_indirect_goes_to_first_enterer_on_compatible_row():
    """w1 enters the value first (row dies); w2 re-enters it on the row
    that becomes final: w1 is the indirect contributor."""
    run = Run()
    dead = run.cc_insert()
    run.fill("w1", dead, "name", "Messi")  # first entry of (name, Messi)

    winner = run.cc_insert()
    row_id = winner
    for column, value in FULL.items():
        row_id = run.fill("w2", row_id, column, value)
    run.upvote("w3", FULL)

    analysis = run.analyze()
    name_cell = next(c for c in analysis.cells if c.column == "name")
    assert name_cell.direct.worker_id == "w2"
    assert name_cell.indirect is not None
    assert name_cell.indirect.worker_id == "w1"


def test_no_indirect_when_first_entry_incompatible():
    """First (position, FW) entry sits on a row for another player: the
    final row's position cell has no indirect contributor."""
    run = Run()
    other = run.cc_insert()
    other = run.fill("w1", other, "name", "Neymar")
    run.fill("w1", other, "position", "FW")  # first FW, on Neymar's row

    winner = run.cc_insert()
    row_id = winner
    for column, value in FULL.items():
        row_id = run.fill("w2", row_id, column, value)
    run.upvote("w3", FULL)

    analysis = run.analyze()
    position_cell = next(c for c in analysis.cells if c.column == "position")
    assert position_cell.direct.worker_id == "w2"
    assert position_cell.indirect is None


def test_auto_upvotes_are_not_separate_contributions():
    run = Run()
    row_id = run.cc_insert()
    for column, value in FULL.items():
        row_id = run.fill("w1", row_id, column, value)
    run.upvote("w1", FULL, auto=True)
    run.upvote("w2", FULL)

    analysis = run.analyze()
    assert len(analysis.upvotes) == 1
    assert analysis.upvotes[0].worker_id == "w2"


def test_upvote_on_non_final_value_does_not_contribute():
    run = Run()
    row_id = run.cc_insert()
    for column, value in FULL.items():
        row_id = run.fill("w1", row_id, column, value)
    run.upvote("w2", FULL)
    run.upvote("w3", {**FULL, "caps": 999})  # value of no final row

    analysis = run.analyze()
    assert {r.worker_id for r in analysis.upvotes} == {"w2"}


def test_downvote_contribution_consistency_rule():
    run = Run()
    row_id = run.cc_insert()
    for column, value in FULL.items():
        row_id = run.fill("w1", row_id, column, value)
    run.upvote("w2", FULL)
    run.upvote("w5", FULL)  # score stays positive through w4's downvote
    # Consistent with S (refutes a wrong row): contributes.
    run.downvote("w3", {"name": "Mesi"})
    # Subsumed by the final row (refutes truth): does not contribute.
    run.downvote("w4", {"name": "Messi"})

    analysis = run.analyze()
    assert {r.worker_id for r in analysis.downvotes} == {"w3"}


def test_contributing_seqs_and_workers():
    run = Run()
    row_id = run.cc_insert()
    for column, value in FULL.items():
        row_id = run.fill("w1", row_id, column, value)
    run.upvote("w2", FULL)
    run.downvote("w3", {"name": "Mesi"})

    analysis = run.analyze()
    seqs = analysis.contributing_seqs()
    assert len(seqs) == 7  # 5 fills + upvote + downvote
    assert analysis.workers() == ["w1", "w2", "w3"]


def test_empty_final_table_yields_empty_cells():
    run = Run()
    row_id = run.cc_insert()
    run.fill("w1", row_id, "name", "Messi")
    analysis = run.analyze()
    assert analysis.cell_count == 0
    assert analysis.upvotes == []
    # With no final rows, every downvote is vacuously consistent.
    run.downvote("w2", {"name": "X"})
    analysis = run.analyze()
    assert len(analysis.downvotes) == 1
