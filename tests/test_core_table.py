"""Unit tests for the candidate table: message application, vote
histories, and final-table derivation — including the paper's section
2.2 running example."""

import pytest

from repro.core import CandidateTable, RowValue, ThresholdScoring
from repro.core.schema import soccer_player_schema


@pytest.fixture
def table():
    return CandidateTable(soccer_player_schema(), ThresholdScoring(2))


def full(name, nationality, position, caps, goals):
    return RowValue(
        {
            "name": name,
            "nationality": nationality,
            "position": position,
            "caps": caps,
            "goals": goals,
        }
    )


def test_apply_insert_creates_empty_row(table):
    row = table.apply_insert("r1")
    assert row.value.is_empty
    assert row.upvotes == 0 and row.downvotes == 0
    assert "r1" in table


def test_duplicate_insert_rejected(table):
    table.apply_insert("r1")
    with pytest.raises(ValueError):
        table.apply_insert("r1")


def test_apply_replace_removes_old_and_adds_new(table):
    table.apply_insert("r1")
    table.apply_replace("r1", "r2", RowValue({"name": "Messi"}))
    assert "r1" not in table
    assert table.row("r2").value == RowValue({"name": "Messi"})


def test_apply_replace_tolerates_missing_old_row(table):
    """Concurrent replaces: the old row may already be gone."""
    table.apply_replace("ghost", "r2", RowValue({"name": "Messi"}))
    assert "r2" in table


def test_apply_replace_duplicate_new_id_rejected(table):
    table.apply_insert("r1")
    with pytest.raises(ValueError):
        table.apply_replace("ghost", "r1", RowValue({"name": "X"}))


def test_upvote_increments_all_equal_rows(table):
    value = full("Messi", "Argentina", "FW", 83, 37)
    table.apply_replace("a", "r1", value)
    table.apply_replace("b", "r2", value)
    bumped = table.apply_upvote(value)
    assert bumped == 2
    assert table.row("r1").upvotes == 1
    assert table.row("r2").upvotes == 1
    assert table.upvote_history[value] == 1


def test_downvote_hits_supersets(table):
    table.apply_replace("a", "r1", RowValue({"nationality": "Brazil"}))
    table.apply_replace(
        "b", "r2", RowValue({"nationality": "Brazil", "position": "FW"})
    )
    table.apply_replace("c", "r3", RowValue({"nationality": "Spain"}))
    bumped = table.apply_downvote(RowValue({"nationality": "Brazil"}))
    assert bumped == 2
    assert table.row("r1").downvotes == 1
    assert table.row("r2").downvotes == 1
    assert table.row("r3").downvotes == 0


def test_replace_inherits_upvotes_for_complete_value(table):
    """UH makes vote/replace interleavings order-insensitive."""
    value = full("Messi", "Argentina", "FW", 83, 37)
    table.apply_upvote(value)  # vote arrives before any row has the value
    table.apply_upvote(value)
    partial = value.without_column("goals")
    table.apply_replace("a", "r1", partial)
    assert table.row("r1").upvotes == 0  # incomplete: no inherited upvotes
    table.apply_replace("r1", "r2", value)
    assert table.row("r2").upvotes == 2  # complete: inherits UH[value]


def test_replace_inherits_downvotes_from_subsets(table):
    table.apply_downvote(RowValue({"nationality": "Brazil"}))
    table.apply_downvote(RowValue({"name": "Neymar", "nationality": "Brazil"}))
    table.apply_downvote(RowValue({"nationality": "Spain"}))
    table.apply_replace(
        "a", "r1", RowValue({"name": "Neymar", "nationality": "Brazil"})
    )
    assert table.row("r1").downvotes == 2


def test_vote_invariants_hold_after_mixed_messages(table):
    value = full("Messi", "Argentina", "FW", 83, 37)
    table.apply_downvote(RowValue({"name": "Messi"}))
    table.apply_replace("a", "r1", RowValue({"name": "Messi"}))
    table.apply_replace("r1", "r2", value.without_column("goals"))
    table.apply_replace("r2", "r3", value)
    table.apply_upvote(value)
    table.check_vote_invariants()


def test_undo_upvote(table):
    value = full("Messi", "Argentina", "FW", 83, 37)
    table.apply_replace("a", "r1", value)
    table.apply_upvote(value)
    assert table.row("r1").upvotes == 1
    table.apply_undo_upvote(value)
    assert table.row("r1").upvotes == 0
    assert table.upvote_history[value] == 0
    table.check_vote_invariants()


def test_undo_upvote_without_history_rejected(table):
    with pytest.raises(ValueError):
        table.apply_undo_upvote(RowValue({"name": "X"}))


def test_undo_downvote(table):
    table.apply_replace("a", "r1", RowValue({"nationality": "Brazil"}))
    table.apply_downvote(RowValue({"nationality": "Brazil"}))
    table.apply_undo_downvote(RowValue({"nationality": "Brazil"}))
    assert table.row("r1").downvotes == 0
    table.check_vote_invariants()


def test_paper_running_example_final_table(table):
    """Section 2.2: the example candidate table yields exactly
    {Messi, Ronaldinho-MF, Casillas}."""
    rows = [
        ("r1", full("Lionel Messi", "Argentina", "FW", 83, 37), 2, 0),
        ("r2", full("Ronaldinho", "Brazil", "MF", 97, 33), 3, 0),
        ("r3", full("Ronaldinho", "Brazil", "FW", 97, 33), 2, 1),
        ("r4", full("Iker Casillas", "Spain", "GK", 150, 0), 2, 0),
        ("r5", full("David Beckham", "England", "MF", 115, 17), 1, 1),
        ("r6", RowValue({"name": "Neymar", "nationality": "Brazil",
                         "position": "FW"}), 0, 1),
        ("r7", RowValue({"name": "Zinedine Zidane", "nationality": "France",
                         "position": "DF"}), 0, 0),
        ("r8", RowValue(), 0, 0),
        ("r9", RowValue(), 0, 0),
        ("r10", RowValue(), 0, 0),
    ]
    for row_id, value, up, down in rows:
        table.load_row(row_id, value, up, down)

    final = table.final_table()
    assert final == [
        full("Lionel Messi", "Argentina", "FW", 83, 37),
        full("Ronaldinho", "Brazil", "MF", 97, 33),  # beats FW copy (3 > 1)
        full("Iker Casillas", "Spain", "GK", 150, 0),
    ]
    # Beckham is omitted: f(1, 1) = 0 is not positive.
    assert all(dict(v)["name"] != "David Beckham" for v in final)


def test_final_table_tie_breaks_deterministically(table):
    a = full("X", "Y", "FW", 80, 10)
    b = full("X", "Y", "MF", 80, 10)
    table.load_row("r2", b, 2, 0)
    table.load_row("r1", a, 2, 0)
    final_rows = table.final_rows()
    assert len(final_rows) == 1
    assert final_rows[0].row_id == "r1"  # smallest identifier wins ties


def test_final_table_empty_without_votes(table):
    table.load_row("r1", full("X", "Y", "FW", 80, 10), 0, 0)
    assert table.final_table() == []


def test_negative_rows_excluded(table):
    table.load_row("r1", full("X", "Y", "FW", 80, 10), 0, 2)
    assert table.final_table() == []


def test_snapshot_equality_semantics(table):
    other = CandidateTable(soccer_player_schema(), ThresholdScoring(2))
    for target in (table, other):
        target.apply_insert("r1")
        target.apply_replace("r1", "r2", RowValue({"name": "Messi"}))
    assert table.snapshot() == other.snapshot()
    other.apply_downvote(RowValue({"name": "Messi"}))
    assert table.snapshot() != other.snapshot()


def test_history_snapshot_ignores_zero_counts(table):
    value = full("X", "Y", "FW", 80, 10)
    table.apply_upvote(value)
    table.apply_undo_upvote(value)
    up, down = table.history_snapshot()
    assert up == frozenset() and down == frozenset()


def test_render_contains_headers_and_values(table):
    table.apply_replace("a", "r1", RowValue({"name": "Messi"}))
    text = table.render()
    assert "name" in text and "Messi" in text and "score" in text


def test_to_records(table):
    table.apply_replace("a", "r1", RowValue({"name": "Messi"}))
    records = table.to_records()
    assert records[0]["value"] == {"name": "Messi"}
    assert records[0]["score"] == 0


def test_rows_with_value_and_subsuming(table):
    table.apply_replace("a", "r1", RowValue({"name": "X"}))
    table.apply_replace("b", "r2", RowValue({"name": "X", "caps": 80}))
    assert len(table.rows_with_value(RowValue({"name": "X"}))) == 1
    assert len(table.rows_subsuming(RowValue({"name": "X"}))) == 2
