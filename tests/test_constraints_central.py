"""Unit tests for the Central Client's PRI maintenance — including the
full section 4.3 walkthrough (Figure 4 states a through f)."""

import pytest

from repro.constraints import CentralClient, Template, UnsatisfiableTemplateError
from repro.core import RowValue, ThresholdScoring
from repro.core.messages import DownvoteMessage, UpvoteMessage
from repro.core.replica import Replica
from repro.core.schema import soccer_player_schema

SCORING = ThresholdScoring(2)


def make_cc(template, on_unsatisfiable="drop"):
    schema = soccer_player_schema()
    sent = []
    cc = CentralClient(
        schema, SCORING, template, send=sent.append,
        on_unsatisfiable=on_unsatisfiable,
    )
    return cc, sent


def paper_template():
    return Template.from_values(
        [{"position": "FW"}, {"nationality": "Brazil"}, {"nationality": "Spain"}]
    )


def test_initialize_inserts_template_rows():
    cc, sent = make_cc(paper_template())
    cc.initialize()
    values = sorted(
        tuple(sorted(dict(row.value).items()))
        for row in cc.replica.table.rows()
    )
    assert values == [
        (("nationality", "Brazil"),),
        (("nationality", "Spain"),),
        (("position", "FW"),),
    ]
    assert cc.pri_holds()
    # insert + fill per row = 6 messages.
    assert len(sent) == 6


def test_initialize_upvotes_complete_template_rows():
    template = Template.from_values(
        [{
            "name": "Lionel Messi", "nationality": "Argentina",
            "position": "FW", "caps": 83, "goals": 37,
        }]
    )
    cc, sent = make_cc(template)
    cc.initialize()
    row = next(iter(cc.replica.table.rows()))
    assert row.upvotes == 1
    assert any(isinstance(m, UpvoteMessage) and m.auto for m in sent)


def test_double_initialize_rejected():
    cc, _ = make_cc(paper_template())
    cc.initialize()
    with pytest.raises(RuntimeError):
        cc.initialize()


def test_cardinality_template_inserts_empty_rows():
    cc, sent = make_cc(Template.cardinality(4))
    cc.initialize()
    assert len(cc.replica.table) == 4
    assert all(row.value.is_empty for row in cc.replica.table.rows())
    assert cc.pri_holds()


def _worker_fill(cc, other, row_id, column, value):
    """Emulate a worker filling through a second replica, relayed to CC."""
    message = other.fill(row_id, column, value)
    cc.on_message(message)
    return message.new_id


def test_section_43_walkthrough():
    """The full Figure 4 story.

    Build the section 4.3 candidate table (rows 1-4), then: two
    downvotes kill row 2 — an augmenting path (b-1-a-4) repairs the
    matching without inserting; then row 4' (Messi, caps 82) dies too —
    template row 'a' has no augmenting path left and CC inserts row 5
    with value (position=FW), exactly Figure 4f.
    """
    cc, sent = make_cc(paper_template())
    cc.initialize()

    # worker1 mirrors CC's state; worker2 deliberately lags (it only
    # ever sees the init messages) so its fill on the original FW row
    # arrives as a *concurrent* replace — producing the extra row 4 the
    # way real concurrency does.
    worker1 = Replica("w1", soccer_player_schema(), SCORING)
    worker2 = Replica("w2", soccer_player_schema(), SCORING)
    for message in list(sent):
        worker1.receive(message)
        worker2.receive(message)

    def fill1(row_id, column, value):
        message = worker1.fill(row_id, column, value)
        cc.on_message(message)
        return message.new_id

    rows = {r.row_id: dict(r.value) for r in worker1.table.rows()}
    fw_row = next(i for i, v in rows.items() if v.get("position") == "FW")
    brazil_row = next(
        i for i, v in rows.items() if v.get("nationality") == "Brazil"
    )
    spain_row = next(
        i for i, v in rows.items() if v.get("nationality") == "Spain"
    )

    # Row 1: Neymar / Brazil / FW (on the Brazil template row).
    row1 = fill1(brazil_row, "name", "Neymar")
    row1 = fill1(row1, "position", "FW")
    # Row 2: Ronaldinho / Brazil / FW (on the FW template row).
    row2 = fill1(fw_row, "name", "Ronaldinho")
    row2 = fill1(row2, "nationality", "Brazil")
    # Row 3: _ / Spain / FW.
    row3 = fill1(spain_row, "position", "FW")
    # Row 4: Messi / _ / FW — worker2's concurrent fill of the original
    # FW template row, which already carries position=FW in its lagging
    # copy (the row was long since replaced at CC, which tolerates the
    # missing old id — this is exactly how conflicts create extra rows).
    message = worker2.fill(fw_row, "name", "Messi")
    cc.on_message(message)
    row4 = message.new_id
    assert dict(worker2.table.row(row4).value) == {
        "name": "Messi", "position": "FW",
    }

    assert cc.pri_holds()
    assert len(cc.probable_now()) >= 4
    inserts_before = cc.stats.inserts
    augmentations_before = cc.stats.augmentations

    # Downvote row 2 twice: score -2, out of P; augmenting path repairs.
    value2 = cc.replica.table.row(row2).value
    cc.on_message(DownvoteMessage(value=value2))
    cc.on_message(DownvoteMessage(value=value2))
    assert cc.pri_holds()
    assert cc.stats.inserts == inserts_before
    assert cc.stats.drops == 0
    # The b-1-a-4 repair is an augmenting path; the counter must see it.
    assert cc.stats.augmentations > augmentations_before

    # Row 4': caps filled in, then killed: no augmenting path for 'a'.
    message = worker2.fill(row4, "caps", 82)
    cc.on_message(message)
    row4p = message.new_id
    value4 = cc.replica.table.row(row4p).value
    cc.on_message(DownvoteMessage(value=value4))
    cc.on_message(DownvoteMessage(value=value4))

    assert cc.pri_holds()
    assert cc.stats.inserts == inserts_before + 1, (
        "CC should have inserted exactly one fresh row for 'a'"
    )
    assert cc.stats.drops == 0
    inserted = [
        r for r in cc.replica.table.rows()
        if dict(r.value) == {"position": "FW"} and r.downvotes == 0
    ]
    assert inserted, "Figure 4f: a fresh (position=FW) row must exist"


def test_downvoted_template_value_is_dropped():
    cc, _ = make_cc(paper_template())
    cc.initialize()
    brazil = RowValue({"nationality": "Brazil"})
    cc.on_message(DownvoteMessage(value=brazil))
    cc.on_message(DownvoteMessage(value=brazil))
    assert cc.pri_holds()
    assert cc.stats.drops == 1
    assert [row.label for row in cc.dropped_rows] == ["b"]
    assert len(cc.template_rows) == 2


def test_unsatisfiable_raises_when_configured():
    cc, _ = make_cc(paper_template(), on_unsatisfiable="error")
    cc.initialize()
    brazil = RowValue({"nationality": "Brazil"})
    cc.on_message(DownvoteMessage(value=brazil))
    with pytest.raises(UnsatisfiableTemplateError):
        cc.on_message(DownvoteMessage(value=brazil))


def test_pri_events_are_recorded():
    cc, _ = make_cc(paper_template())
    cc.initialize()
    brazil = RowValue({"nationality": "Brazil"})
    cc.on_message(DownvoteMessage(value=brazil))
    cc.on_message(DownvoteMessage(value=brazil))
    kinds = {event.kind for event in cc.stats.events}
    assert "drop" in kinds


def test_augmentation_counter_moves():
    """stats.augmentations tracks successful augmenting paths (it was
    previously dead: the counter only ever added zero)."""
    cc, _ = make_cc(paper_template())
    assert cc.stats.augmentations == 0
    cc.initialize()
    # Matching each of the three template rows to its seeded probable
    # row takes one augmenting path apiece.
    assert cc.stats.augmentations >= 3
    assert cc.stats.augmentations == cc.matching.augment_count


def test_refresh_before_initialize_is_noop():
    cc, sent = make_cc(paper_template())
    cc.refresh()
    assert sent == []


def test_correspondence_maps_labels_to_rows():
    cc, _ = make_cc(paper_template())
    cc.initialize()
    mapping = cc.correspondence()
    assert set(mapping) == {"a", "b", "c"}
    for row_id in mapping.values():
        assert row_id in cc.replica.table


def test_predicates_template_maintenance():
    """The predicates extension: CC seeds equality cells only; a row
    violating a predicate loses its edge and the PRI repairs."""
    template = Template.from_predicates(
        [{"nationality": "=Spain", "caps": ">=100"}]
    )
    cc, sent = make_cc(template)
    cc.initialize()
    seeded = next(iter(cc.replica.table.rows()))
    assert dict(seeded.value) == {"nationality": "Spain"}
    assert cc.pri_holds()

    worker = Replica("w", soccer_player_schema(), SCORING)
    for message in list(sent):
        worker.receive(message)
    # A worker fills caps=80: the row can no longer satisfy ">=100".
    message = worker.fill(seeded.row_id, "caps", 80)
    inserts_before = cc.stats.inserts
    cc.on_message(message)
    assert cc.pri_holds()
    assert cc.stats.inserts == inserts_before + 1
