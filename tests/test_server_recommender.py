"""Unit tests for the cell-recommendation strategy (section 8)."""

import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.server.recommender import CellRecommender
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, Template.cardinality(3)
    )
    clients = []
    for i in range(2):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=RngStreams(i))
        client.bootstrap(backend.attach_client(client.worker_id))
        clients.append(client)
    backend.start()
    sim.run()
    return sim, backend, clients, CellRecommender(backend)


def test_open_cells_cover_all_empty_cells(world):
    sim, backend, clients, recommender = world
    cells = recommender.open_cells()
    # 3 empty rows x 5 columns.
    assert len(cells) == 15
    assert len(set(cells)) == 15


def test_matched_rows_come_first(world):
    sim, backend, clients, recommender = world
    matched = set(backend.central.correspondence().values())
    cells = recommender.open_cells()
    first_rows = {row_id for row_id, _ in cells[:5]}
    assert first_rows <= matched


def test_partially_filled_rows_prioritized(world):
    sim, backend, clients, recommender = world
    row_id = clients[0].replica.table.row_ids()[0]
    new_id = clients[0].fill(row_id, "name", "Messi")
    sim.run()
    cells = recommender.open_cells()
    # The nearly-filled row's remaining cells lead the matched group...
    leading_rows = [row for row, _ in cells[:4]]
    assert all(row == new_id for row in leading_rows)


def test_recommendations_are_disjoint(world):
    sim, backend, clients, recommender = world
    assignments = recommender.recommend(["w0", "w1"])
    assert set(assignments) == {"w0", "w1"}
    targets = {(r.row_id, r.column) for r in assignments.values()}
    assert len(targets) == 2
    rows = {r.row_id for r in assignments.values()}
    assert len(rows) == 2  # different rows entirely


def test_sequential_recommend_for_is_disjoint(world):
    sim, backend, clients, recommender = world
    first = recommender.recommend_for("w0")
    second = recommender.recommend_for("w1")
    assert first is not None and second is not None
    assert first.row_id != second.row_id


def test_recommendation_is_sticky_until_filled(world):
    sim, backend, clients, recommender = world
    first = recommender.recommend_for("w0")
    again = recommender.recommend_for("w0")
    assert (again.row_id, again.column) == (first.row_id, first.column)
    # Fill the advised cell: the next recommendation moves on.
    sample_values = {"name": "Messi", "nationality": "Argentina",
                     "position": "FW", "caps": 83, "goals": 37}
    clients[0].fill(first.row_id, first.column, sample_values[first.column])
    sim.run()
    moved = recommender.recommend_for("w0")
    assert moved is None or (moved.row_id, moved.column) != (
        first.row_id, first.column,
    )


def test_no_recommendation_when_table_complete(world):
    sim, backend, clients, recommender = world
    values = {"name": "A", "nationality": "B", "position": "FW",
              "caps": 80, "goals": 1}
    for index, row_id in enumerate(clients[0].replica.table.row_ids()):
        for column, value in values.items():
            cell = f"{value}{index}" if isinstance(value, str) and column in (
                "name",) else value
            row_id = clients[0].fill(row_id, column, cell)
    sim.run()
    assert recommender.recommend_for("w1") is None


def test_skill_times_from_trace(world):
    sim, backend, clients, recommender = world
    row_id = clients[0].replica.table.row_ids()[0]
    sim.schedule(10.0, lambda: None)
    sim.run()
    row_id = clients[0].fill(row_id, "name", "Messi")
    sim.run(until=40.0)
    clients[0].fill(row_id, "caps", 83)
    sim.run()
    skills = recommender.skill_times()
    # First action has no generation time; the caps fill does (~30s).
    assert "caps" in skills.get("w0", {})
    assert skills["w0"]["caps"] == pytest.approx(30.0, abs=1.0)


def test_relative_speed_defaults_to_one(world):
    sim, backend, clients, recommender = world
    assert recommender.relative_speed("w0", "name") == 1.0
