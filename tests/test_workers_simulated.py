"""Unit tests for the simulated worker loop and latency model."""

import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Template
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.datasets import SoccerPlayerUniverse
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.sim import RngStreams, Simulator
from repro.workers import (
    ActionLatencies,
    DiligentPolicy,
    SimulatedWorker,
    WorkerProfile,
)
from repro.workers.profile import representative_crew

SCORING = ThresholdScoring(2)


def build(num_workers=1, profile=None, template=None, is_done=None):
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, template or Template.cardinality(2)
    )
    truth = SoccerPlayerUniverse(seed=1, size=40, include_dob=False).ground_truth()
    workers = []
    for i in range(num_workers):
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=RngStreams(i))
        client.bootstrap(backend.attach_client(client.worker_id))
        p = profile or WorkerProfile(fill_accuracy=1.0, pause_prob=0.0)
        worker = SimulatedWorker(
            client,
            DiligentPolicy(truth, p, reference=truth),
            p,
            sim,
            streams=RngStreams(100 + i),
            latencies=ActionLatencies(),
            is_done=is_done or (lambda: backend.completed),
        )
        workers.append(worker)
    backend.start()
    return sim, backend, workers


def test_worker_starts_after_delay():
    profile = WorkerProfile(start_delay=30.0, fill_accuracy=1.0, pause_prob=0.0)
    sim, backend, (worker,) = build(profile=profile)
    worker.start()
    sim.run(until=25.0)
    assert worker.log.actions == 0
    sim.run(until=120.0)
    assert worker.log.actions > 0


def test_worker_double_start_rejected():
    sim, backend, (worker,) = build()
    worker.start()
    with pytest.raises(RuntimeError):
        worker.start()


def test_worker_stops_when_done_flag_set():
    done = {"flag": False}
    sim, backend, (worker,) = build(is_done=lambda: done["flag"])
    worker.start()
    sim.run(until=60.0)
    actions_before = worker.log.actions
    assert actions_before > 0
    done["flag"] = True
    sim.run(until=600.0)
    assert worker.log.actions <= actions_before + 1  # at most in-flight one


def test_worker_stop_method():
    sim, backend, (worker,) = build(is_done=lambda: False)
    worker.start()
    sim.run(until=60.0)
    worker.stop()
    before = worker.log.actions
    sim.run(until=600.0)
    assert worker.log.actions <= before + 1


def test_two_workers_complete_collection():
    sim, backend, workers = build(num_workers=2)
    for worker in workers:
        worker.start()
    sim.run(until=3600.0)
    assert backend.completed
    assert len(backend.final_rows()) >= 2
    # Everyone converged.
    snapshots = {w.client.snapshot() for w in workers}
    snapshots.add(backend.replica.snapshot())
    assert len(snapshots) == 1


def test_action_times_recorded():
    sim, backend, workers = build(num_workers=2)
    for worker in workers:
        worker.start()
    sim.run(until=3600.0)
    worker = workers[0]
    assert len(worker.log.action_times) == worker.log.actions
    kinds = {kind for _, kind in worker.log.action_times}
    assert any(kind.startswith("fill:") for kind in kinds)


def test_speed_multiplier_scales_output():
    fast_profile = WorkerProfile(speed=3.0, fill_accuracy=1.0,
                                 pause_prob=0.0, vote_affinity=0.0)
    slow_profile = WorkerProfile(speed=0.5, fill_accuracy=1.0,
                                 pause_prob=0.0, vote_affinity=0.0)
    results = {}
    for name, profile in [("fast", fast_profile), ("slow", slow_profile)]:
        sim, backend, (worker,) = build(
            profile=profile,
            template=Template.cardinality(10),
            is_done=lambda: False,
        )
        worker.start()
        sim.run(until=120.0)
        results[name] = worker.log.actions
    assert results["fast"] > results["slow"]


def test_latencies_sampling_positive():
    latencies = ActionLatencies()
    rng = random.Random(0)
    for column in ["name", "caps", "unheard_of"]:
        assert latencies.sample_fill(rng, column) > 0
    assert latencies.sample_upvote(rng) > 0
    assert latencies.sample_downvote(rng) > 0
    assert latencies.median_for_fill("name") == 14.0
    assert latencies.median_for_fill("unknown") == latencies.default_fill


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkerProfile(fill_accuracy=1.5)
    with pytest.raises(ValueError):
        WorkerProfile(speed=0)
    with pytest.raises(ValueError):
        WorkerProfile(vote_affinity=-0.1)


def test_representative_crew_shape():
    crew = representative_crew(seed=0)
    assert len(crew) == 5
    assert any(p.vote_affinity == 0 for p in crew)  # the never-voter
    speeds = [p.speed for p in crew]
    assert max(speeds) / min(speeds) > 2  # wide productivity spread
    assert representative_crew(seed=0) == crew  # deterministic


def test_session_expiry_stops_worker():
    profile = WorkerProfile(fill_accuracy=1.0, pause_prob=0.0,
                            session_seconds=60.0)
    sim, backend, (worker,) = build(profile=profile,
                                    template=Template.cardinality(10),
                                    is_done=lambda: False)
    worker.start()
    sim.run(until=600.0)
    assert worker.departed
    # No actions happen after the session window (plus one in-flight).
    after_window = [t for t, _ in worker.log.action_times if t > 61.0 + 90.0]
    assert not after_window


def test_collection_survives_worker_churn():
    """One of three workers leaves mid-run; the rest finish the job."""
    sim = Simulator()
    streams = RngStreams(0)
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=streams)
    schema = soccer_player_schema()
    backend = BackendServer(
        sim, network, schema, SCORING, Template.cardinality(6)
    )
    truth = SoccerPlayerUniverse(seed=1, size=40,
                                 include_dob=False).ground_truth()
    workers = []
    for i in range(3):
        profile = WorkerProfile(
            fill_accuracy=1.0, pause_prob=0.0,
            session_seconds=40.0 if i == 0 else None,
        )
        client = WorkerClient(f"w{i}", schema, SCORING, network,
                              streams=streams)
        client.bootstrap(backend.attach_client(client.worker_id))
        worker = SimulatedWorker(
            client,
            DiligentPolicy(truth, profile, reference=truth),
            profile, sim, streams=streams,
            is_done=lambda: backend.completed,
        )
        workers.append(worker)
        worker.start()
    backend.start()
    sim.run(until=3600.0)
    assert workers[0].departed
    assert backend.completed
    assert len(backend.final_rows()) == 6
    # The departed worker's copy is stale-but-consistent: it processed
    # a prefix of the broadcast stream (messages keep flowing to it).
    assert workers[1].client.snapshot() == backend.replica.snapshot()
