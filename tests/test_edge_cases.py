"""Edge-case tests across modules (gaps found by review)."""

import random

import pytest

from repro.client import WorkerClient
from repro.constraints import Predicate, Template, TemplateRow
from repro.constraints.template import _label
from repro.core import (
    CandidateTable,
    DefaultScoring,
    Replica,
    RowValue,
    ThresholdScoring,
)
from repro.core.schema import soccer_player_schema
from repro.experiments.effectiveness import EffectivenessReport
from repro.experiments.harness import ExperimentConfig
from repro.net import ConstantLatency, Network
from repro.server import BackendServer
from repro.server.backend import BootstrapState
from repro.sim import RngStreams, Simulator

SCHEMA = soccer_player_schema()
SCORING = ThresholdScoring(2)


class TestBootstrapEdges:
    def test_restore_into_nonempty_replica_rejected(self):
        source = Replica("a", SCHEMA, SCORING)
        source.insert()
        state = BootstrapState.capture(source)
        target = Replica("b", SCHEMA, SCORING)
        target.insert()
        with pytest.raises(ValueError):
            state.restore_into(target)

    def test_capture_includes_histories(self):
        source = Replica("a", SCHEMA, SCORING)
        message = source.insert()
        partial = source.fill(message.row_id, "name", "X")
        source.downvote(partial.new_id)
        state = BootstrapState.capture(source)
        target = Replica("b", SCHEMA, SCORING)
        state.restore_into(target)
        assert target.snapshot() == source.snapshot()
        assert (
            target.table.history_snapshot()
            == source.table.history_snapshot()
        )


class TestTemplateEdges:
    def test_labels_continue_past_z(self):
        assert _label(0) == "a"
        assert _label(25) == "z"
        assert _label(26) == "t26"
        template = Template.cardinality(30)
        labels = [row.label for row in template.rows]
        assert len(set(labels)) == 30

    def test_empty_in_predicate_matches_nothing(self):
        predicate = Predicate.parse("in{}")
        assert not predicate.matches("anything")

    def test_float_coercion_in_parse(self):
        assert Predicate.parse(">=8.5").operand == 8.5

    def test_template_row_str_for_empty(self):
        assert "<empty>" in str(TemplateRow.empty("a"))


class TestFinalTableEdges:
    def full(self, **overrides):
        base = {"name": "X", "nationality": "Y", "position": "FW",
                "caps": 80, "goals": 10}
        base.update(overrides)
        return RowValue(base)

    def test_negative_best_blocks_nothing(self):
        """A negative-scored complete row never blocks a positive one
        with the same key, regardless of magnitude."""
        table = CandidateTable(SCHEMA, DefaultScoring())
        table.load_row("r1", self.full(position="MF"), 5, 9)  # score -4
        table.load_row("r2", self.full(), 1, 0)  # score 1
        assert [row.row_id for row in table.final_rows()] == ["r2"]

    def test_zero_score_groups_excluded_entirely(self):
        table = CandidateTable(SCHEMA, DefaultScoring())
        table.load_row("r1", self.full(), 3, 3)
        table.load_row("r2", self.full(position="MF"), 0, 0)
        assert table.final_rows() == []


class TestWorkerClientEdges:
    def make_world(self):
        sim = Simulator()
        network = Network(sim, default_latency=ConstantLatency(0.01),
                          streams=RngStreams(0))
        backend = BackendServer(
            sim, network, SCHEMA, SCORING,
            Template.cardinality(2),
        )
        client = WorkerClient("w0", SCHEMA, SCORING, network,
                              streams=RngStreams(0))
        client.bootstrap(backend.attach_client("w0"))
        backend.start()
        sim.run()
        return sim, backend, client

    def test_resolve_row_is_identity_for_live_rows(self):
        sim, backend, client = self.make_world()
        row_id = client.replica.table.row_ids()[0]
        assert client.resolve_row(row_id) == row_id

    def test_resolve_row_unknown_id_passthrough(self):
        sim, backend, client = self.make_world()
        assert client.resolve_row("ghost") == "ghost"

    def test_resolve_follows_multi_hop_lineage(self):
        sim, backend, client = self.make_world()
        original = client.replica.table.row_ids()[0]
        current = original
        for column, value in [("name", "A"), ("nationality", "B"),
                              ("position", "FW")]:
            current = client.fill(current, column, value)
        assert client.resolve_row(original) == current

    def test_upvote_value_requires_auto_flag_passthrough(self):
        replica = Replica("r", SCHEMA, SCORING)
        row_id = replica.insert().row_id
        for column, value in [
            ("name", "A"), ("nationality", "B"), ("position", "FW"),
            ("caps", 80), ("goals", 1),
        ]:
            row_id = replica.fill(row_id, column, value).new_id
        message = replica.upvote_value(replica.row(row_id).value, auto=True)
        assert message.auto


class TestHarnessConfigEdges:
    def test_profiles_padded_for_large_crews(self):
        config = ExperimentConfig(seed=1, num_workers=9)
        profiles = config.resolved_profiles()
        assert len(profiles) == 9
        # Padding is deterministic.
        again = ExperimentConfig(seed=1, num_workers=9).resolved_profiles()
        assert profiles == again

    def test_policy_kinds_padded_with_diligent(self):
        config = ExperimentConfig(num_workers=4, policy_kinds=("spammer",))
        kinds = config.resolved_policy_kinds()
        assert kinds == ["spammer", "diligent", "diligent", "diligent"]

    def test_explicit_profiles_truncated(self):
        from repro.workers.profile import representative_crew

        crew = tuple(representative_crew())
        config = ExperimentConfig(num_workers=2, profiles=crew)
        assert len(config.resolved_profiles()) == 2


def test_effectiveness_duration_str_incomplete():
    report = EffectivenessReport(
        seed=0, completed=False, duration=None, final_rows=0,
        candidate_rows=0, heavily_downvoted=0, conflict_extras=0,
        accuracy=0.0, total_worker_actions=0,
    )
    assert report.duration_str == "did not complete"


def test_network_send_to_self_is_allowed():
    """Self-sends are legal (a monitor could subscribe to itself)."""
    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    got = []

    class Echo:
        def on_message(self, source, payload):
            got.append((source, payload))

    network.register("a", Echo())
    network.send("a", "a", "ping")
    sim.run()
    assert got == [("a", "ping")]
