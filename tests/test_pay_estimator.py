"""Unit tests for live compensation estimation (section 5.3)."""

import pytest

from repro.constraints import Template
from repro.core import (
    DefaultScoring,
    DownvoteMessage,
    Replica,
    RowValue,
    ThresholdScoring,
    TraceRecord,
    UpvoteMessage,
)
from repro.core.schema import soccer_player_schema
from repro.pay import AllocationScheme, CompensationEstimator

SCHEMA = soccer_player_schema()
FULL = {
    "name": "Messi", "nationality": "Argentina",
    "position": "FW", "caps": 83, "goals": 37,
}


def make_estimator(scheme=AllocationScheme.UNIFORM, template=None, budget=12.0):
    template = template or Template.cardinality(2)
    return CompensationEstimator(
        SCHEMA, template, ThresholdScoring(2), budget, scheme=scheme
    )


class Feed:
    """Drives an estimator with a synchronized master table."""

    def __init__(self, estimator):
        self.estimator = estimator
        self.master = Replica("server", SCHEMA, ThresholdScoring(2))
        self.cc = Replica("CC", SCHEMA, ThresholdScoring(2))
        self._seq = 0

    def cc_insert(self):
        message = self.cc.insert()
        self.master.receive(message)
        return message.row_id

    def feed(self, worker, message, at):
        self._seq += 1
        self.master.receive(message)
        record = TraceRecord(seq=self._seq, timestamp=at,
                             worker_id=worker, message=message)
        return self.estimator.on_record(record, self.master.table)

    def fill(self, worker, row_id, column, value, at):
        replica = Replica(f"{worker}x{self._seq}", SCHEMA, ThresholdScoring(2))
        row = self.master.table.row(row_id)
        replica.table.load_row(row_id, row.value, 0, 0)
        message = replica.fill(row_id, column, value)
        amount = self.feed(worker, message, at)
        return message.new_id, amount


def test_u_min_for_threshold_scoring():
    assert make_estimator().u_min == 2


def test_u_min_for_default_scoring():
    estimator = CompensationEstimator(
        SCHEMA, Template.cardinality(2), DefaultScoring(), 10.0
    )
    assert estimator.u_min == 1


def test_expected_cells_cardinality_template():
    estimator = make_estimator()
    assert all(v == 2 for v in estimator.expected_cells.values())


def test_expected_cells_exclude_pinned_template_values():
    template = Template.from_values(
        [{"nationality": "Brazil"}, {}], cardinality=2
    )
    estimator = make_estimator(template=template)
    assert estimator.expected_cells["nationality"] == 1
    assert estimator.expected_cells["name"] == 2


def test_uniform_estimate_matches_closed_form():
    """With |C|=2*5 cells expected, u_min=2 so |U| starts at 2, |D|=0:
    first fill's estimate is B / (|C| + |U|)."""
    estimator = make_estimator(budget=12.0)
    feed = Feed(estimator)
    row = feed.cc_insert()
    _, amount = feed.fill("w1", row, "name", "Messi", 1.0)
    expected = 12.0 / (5 * 2 + (2 - 1) * 2)
    assert amount == pytest.approx(expected)


def test_repeat_value_estimate_gets_split_share():
    estimator = make_estimator()
    feed = Feed(estimator)
    row_a = feed.cc_insert()
    row_b = feed.cc_insert()
    _, first = feed.fill("w1", row_a, "position", "FW", 1.0)
    _, second = feed.fill("w2", row_b, "position", "FW", 2.0)
    assert second == pytest.approx(first * 0.5)  # non-key h = 0.5


def test_repeat_key_value_estimate_gets_key_split():
    estimator = make_estimator()
    feed = Feed(estimator)
    row_a = feed.cc_insert()
    row_b = feed.cc_insert()
    _, first = feed.fill("w1", row_a, "name", "Messi", 1.0)
    _, second = feed.fill("w2", row_b, "name", "Messi", 2.0)
    assert second == pytest.approx(first * 0.25)


def test_auto_upvote_estimated_zero():
    estimator = make_estimator()
    feed = Feed(estimator)
    row = feed.cc_insert()
    for i, (column, value) in enumerate(FULL.items()):
        row, _ = feed.fill("w1", row, column, value, float(i + 1))
    amount = feed.feed(
        "w1", UpvoteMessage(value=RowValue(FULL), auto=True), 6.0
    )
    assert amount == 0.0


def test_manual_vote_estimates_positive():
    estimator = make_estimator()
    feed = Feed(estimator)
    row = feed.cc_insert()
    for i, (column, value) in enumerate(FULL.items()):
        row, _ = feed.fill("w1", row, column, value, float(i + 1))
    up = feed.feed("w2", UpvoteMessage(value=RowValue(FULL)), 7.0)
    down = feed.feed("w3", DownvoteMessage(value=RowValue({"name": "Zzz"})), 8.0)
    assert up > 0
    assert down > 0


def test_raw_and_corrected_totals():
    estimator = make_estimator()
    feed = Feed(estimator)
    row = feed.cc_insert()
    amounts = []
    for i, (column, value) in enumerate(FULL.items()):
        row, amount = feed.fill("w1", row, column, value, float(i + 1))
        amounts.append(amount)
    assert estimator.raw_total("w1") == pytest.approx(sum(amounts))
    seqs = {r.seq for r in estimator.records[:2]}
    partial = estimator.corrected_total("w1", seqs)
    assert partial == pytest.approx(sum(amounts[:2]))
    assert estimator.raw_total("ghost") == 0.0


def test_timeline_is_cumulative():
    estimator = make_estimator()
    feed = Feed(estimator)
    row = feed.cc_insert()
    for i, (column, value) in enumerate(FULL.items()):
        row, _ = feed.fill("w1", row, column, value, float(i + 1))
    timeline = estimator.timeline_for("w1")
    totals = [v for _, v in timeline]
    assert totals == sorted(totals)
    assert totals[-1] == pytest.approx(estimator.raw_total("w1"))


def test_column_weights_adapt_to_observed_times():
    """Name fills take 30s, others 5s: after enough samples the name
    estimate exceeds the position estimate."""
    estimator = make_estimator(scheme=AllocationScheme.COLUMN_WEIGHTED)
    feed = Feed(estimator)
    at = 0.0
    name_amounts, position_amounts = [], []
    for i in range(3):
        row = feed.cc_insert()
        values = {**FULL, "name": f"P{i}", "caps": 80 + i}
        for column in SCHEMA.column_names:
            at += 30.0 if column == "name" else 5.0
            row, amount = feed.fill("w1", row, column, values[column], at)
            if column == "name":
                name_amounts.append(amount)
            elif column == "position" and i == 0:
                position_amounts.append(amount)
    assert name_amounts[-1] > position_amounts[0]


def test_d_estimate_counts_only_consistent_downvotes():
    from repro.constraints.probable import probable_rows

    estimator = make_estimator()
    feed = Feed(estimator)
    row = feed.cc_insert()
    row, _ = feed.fill("w1", row, "nationality", "Brazil", 1.0)
    # Downvote of a still-probable row's value: inconsistent with the
    # probable set -> not counted toward |D|.
    feed.feed(
        "w2", DownvoteMessage(value=RowValue({"nationality": "Brazil"})), 2.0
    )
    probable = probable_rows(feed.master.table)
    assert estimator._estimate_d(probable) == 0
    # A downvote no probable row subsumes counts.
    feed.feed("w3", DownvoteMessage(value=RowValue({"name": "Zzz"})), 3.0)
    probable = probable_rows(feed.master.table)
    assert estimator._estimate_d(probable) == 1


def test_dual_scheme_key_weight_adjustment_none_without_slowdown():
    estimator = make_estimator(scheme=AllocationScheme.DUAL_WEIGHTED)
    feed = Feed(estimator)
    at = 0.0
    amounts = []
    for i in range(3):
        row = feed.cc_insert()
        values = {**FULL, "name": f"P{i}", "caps": 80 + i}
        for column in SCHEMA.column_names:
            at += 10.0
            row, amount = feed.fill("w1", row, column, values[column], at)
            if column == "name":
                amounts.append(amount)
    # Constant cadence: z stays 0, no position spread between key fills
    # beyond weight-learning drift.
    assert estimator._estimated_z("name") == 0.0
