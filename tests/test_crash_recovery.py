"""Crash-recovery property suite: WAL + checkpoint durability under
random crash schedules.

A :class:`~repro.net.faults.ShardCrashWindow` destroys a shard's entire
volatile state — table, sessions, commit log, exchange bookkeeping,
in-flight wire traffic — leaving only its durable store (the WAL and
the latest cut-addressed checkpoint).  These tests drive the full
sharded assembly with crash windows overlaid (optionally composed with
worker outages and shard partitions) and assert that once every window
closes and the network quiesces:

- every shard replica and every client replica is **byte-identical**
  (``dump_json(canonical_state(BootstrapState.capture(...)))`` — the
  PR 9 oracle encoding) to the quiesced primary, which hosts the
  Central Client;
- the merged committed trace, replayed from scratch on a fresh table
  that never crashed — the no-crash oracle — reproduces the primary
  byte-for-byte, with the same final rows;
- the CC's probable-row invariant holds, and every replica's
  incremental probable view equals its from-scratch oracle;
- per-link network conservation balances, crash purges included.

The torn-tail legs tear the last WAL record mid-write (an fsync that
never completed) *after* the exchange propagated it, and recovery must
re-adopt the lost commits from a surviving peer's WAL at their original
slots.  The ingest-never-paused witness checks the survivors kept
committing while a peer was down, as in the PR 9 follower-bootstrap
suite.  The CI sanitizer leg re-runs this file under
``REPRO_NET_SANITIZE=1`` (recovered replicas must not alias logged
payloads — the WAL codec rebuilds every object from bytes).
"""

from __future__ import annotations

import json
import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdc.view import canonical_state
from repro.client import WorkerClient
from repro.constraints import Template
from repro.core.messages import TraceRecord
from repro.durability import DurabilityConfig
from repro.net import (
    FaultInjector,
    FaultPlan,
    Network,
    ShardCrashWindow,
    UniformLatency,
)
from repro.obs import dump_json
from repro.server import ShardedBackend
from repro.server.backend import BootstrapState
from repro.server.shard import shard_endpoint
from repro.server.tracelog import replay_trace
from repro.sim import RngStreams, Simulator

from tests.test_shard_convergence import (
    HORIZON,
    SCHEMA,
    SCORING,
    _perform,
    _shard_groups,
    operation,
)


def canonical_doc(replica) -> str:
    return dump_json(canonical_state(BootstrapState.capture(replica)))


def _crash_plan(
    crash_seed: int,
    n_shards: int,
    names: list[str],
    *,
    outages: bool = False,
    partitions: bool = False,
) -> FaultPlan:
    """A seeded plan that always contains at least one crash window."""
    return FaultPlan.generate(
        random.Random(crash_seed),
        names if outages else [],
        horizon=HORIZON,
        outage_prob=0.5,
        min_outage=0.5,
        max_outage=6.0,
        shard_groups=(
            _shard_groups(n_shards) if partitions and n_shards > 1 else None
        ),
        shard_partition_prob=0.6,
        crash_endpoints=[shard_endpoint(k) for k in range(n_shards)],
        crash_prob=1.0,
        min_crash_gap=0.5,
    )


def _build_crash_rig(
    n_shards,
    num_clients,
    latency_seed,
    plan,
    checkpoint_interval=8,
    sanitize=None,
):
    """The sharded assembly with durability on and crash choreography
    bound; ops not scheduled yet."""
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.01, 1.5),
        streams=RngStreams(latency_seed),
        sanitize=sanitize,
    )
    backend = ShardedBackend(
        sim,
        network,
        SCHEMA,
        SCORING,
        Template.cardinality(2),
        shards=n_shards,
        durability=DurabilityConfig(checkpoint_interval=checkpoint_interval),
    )
    names = [f"c{i}" for i in range(num_clients)]
    clients: dict[str, WorkerClient] = {}
    rng_streams = RngStreams(latency_seed)
    for name in names:
        client = WorkerClient(
            name, SCHEMA, SCORING, network, streams=rng_streams
        )
        client.bootstrap(backend.attach_client(name))
        clients[name] = client
    injector = FaultInjector(sim, network, plan)
    backend.bind_faults(injector, clients=clients)
    for name in plan.faulted_endpoints():
        client = clients.get(name)
        if client is None:
            continue  # shard endpoints resync via bind_faults
        injector.bind(
            name,
            on_disconnect=lambda c=client: backend.disconnect_worker(c),
            on_reconnect=lambda c=client: backend.reconnect_worker(c),
            on_requeue=client.requeue_unsent,
        )
    injector.install()
    backend.start()
    return sim, network, backend, clients, injector, names


def _schedule_ops(sim, clients, names, schedule):
    for at, client_pick, op_kind, row_pick, column_pick, value_pick in schedule:
        client = clients[names[client_pick % len(names)]]
        sim.schedule_at(
            at,
            lambda c=client, k=op_kind, r=row_pick, col=column_pick,
            v=value_pick: _perform(c, k, r, col, v),
        )


def _finish(sim, network, injector):
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()


def _assert_crash_convergence(backend, clients, network):
    assert backend.exchange_backlog() == 0
    assert backend.fully_exchanged()
    for shard in backend.shards:
        assert not shard.crashed

    # Byte-identical per-shard and per-client snapshots vs the quiesced
    # primary (the CC's host): the same canonical-state byte-compare
    # the CDC acceptance suite uses.
    reference = backend.primary.replica
    reference_doc = canonical_doc(reference)
    replicas = [shard.replica for shard in backend.shards] + [
        client.replica for client in clients.values()
    ]
    for replica in replicas:
        assert canonical_doc(replica) == reference_doc
        replica.table.check_vote_invariants()

    # The no-crash oracle: every committed operation replayed from
    # scratch on a fresh table that never crashed.  Byte-identical
    # state means recovery was snapshot-equivalent — no committed
    # operation was lost, duplicated, or reordered incompatibly.
    committed = backend.committed_trace()
    records = [
        TraceRecord(
            seq=index,
            timestamp=commit.timestamp,
            worker_id=commit.worker_id,
            message=message,
        )
        for index, (commit, message) in enumerate(committed)
    ]
    oracle = replay_trace(SCHEMA, SCORING, records)
    oracle_doc = dump_json(
        canonical_state(BootstrapState.capture(SimpleNamespace(table=oracle)))
    )
    assert oracle_doc == reference_doc
    assert sorted(r.row_id for r in oracle.final_rows()) == sorted(
        r.row_id for r in reference.table.final_rows()
    )

    # CC invariants at the primary.
    assert backend.central.pri_holds()
    from repro.constraints.probable import (
        probable_rows,
        probable_rows_from_scratch,
    )

    for replica in replicas:
        incremental = sorted(row.row_id for row in probable_rows(replica.table))
        scratch = sorted(
            row.row_id for row in probable_rows_from_scratch(replica.table)
        )
        assert incremental == scratch

    network.check_accounting()


# -- random crash schedules ---------------------------------------------------


@pytest.mark.slow
@settings(max_examples=90, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=25),
    n_shards=st.sampled_from([1, 2, 4]),
    crash_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=1_000),
    checkpoint_interval=st.sampled_from([2, 8, 256]),
)
def test_crash_recovery_converges_under_random_crash_schedules(
    schedule, n_shards, crash_seed, latency_seed, checkpoint_interval
):
    """Random crash schedules over N ∈ {1, 2, 4} shards: every crashed
    shard recovers from checkpoint + WAL suffix and the whole assembly
    converges byte-identically to the no-crash oracle — at every
    checkpoint cadence, including one (256) that never checkpoints
    within these runs (pure WAL replay) and one (2) that checkpoints
    nearly every drain."""
    plan = _crash_plan(crash_seed, n_shards, [])
    sim, network, backend, clients, injector, names = _build_crash_rig(
        n_shards, 4, latency_seed, plan,
        checkpoint_interval=checkpoint_interval,
    )
    _schedule_ops(sim, clients, names, sorted(schedule))
    _finish(sim, network, injector)
    if plan.crashes:
        assert any(e.kind == "crash" for e in injector.events)
        assert any(e.kind == "restart" for e in injector.events)
        for endpoint in plan.crashed_endpoints():
            shard = backend.shards[int(endpoint.split("-")[1])]
            assert shard.durable is not None and shard.durable.recoveries >= 1
    _assert_crash_convergence(backend, clients, network)


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(
    schedule=st.lists(operation, min_size=3, max_size=25),
    n_shards=st.sampled_from([2, 4]),
    crash_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=1_000),
)
def test_crashes_compose_with_outages_and_partitions(
    schedule, n_shards, crash_seed, latency_seed
):
    """Crash windows overlaid with worker outage windows and shard
    partitions — all three fault kinds in one run — still converge to
    the no-crash oracle."""
    plan = _crash_plan(
        crash_seed, n_shards, [f"c{i}" for i in range(4)],
        outages=True, partitions=True,
    )
    sim, network, backend, clients, injector, names = _build_crash_rig(
        n_shards, 4, latency_seed, plan
    )
    _schedule_ops(sim, clients, names, sorted(schedule))
    _finish(sim, network, injector)
    _assert_crash_convergence(backend, clients, network)


# -- torn-tail WAL legs -------------------------------------------------------


_TORN_SCHEDULE = sorted(
    (round(0.31 * i % 3.4, 3), i,
     ["fill", "fill", "upvote", "downvote"][i % 4], i * 3, i, i * 7)
    for i in range(20)
)


def _run_torn_tail(tear_fraction: float, latency_seed: int = 5):
    """Quiesce (everything exchanged), crash shard 1, tear part of its
    last WAL record mid-window, restart.  The torn commits survive only
    in the peers' WALs — `recommit_lost` must re-adopt them."""
    plan = FaultPlan(crashes=(ShardCrashWindow(shard_endpoint(1), 6.0, 8.0),))
    sim, network, backend, clients, injector, names = _build_crash_rig(
        2, 3, latency_seed, plan, checkpoint_interval=256
    )
    _schedule_ops(sim, clients, names, _TORN_SCHEDULE)

    torn = {}

    def tear():
        shard = backend.shards[1]
        assert shard.crashed
        log = shard.durable.log
        records, _ = log.replay()
        if not records:
            return
        last_line_bytes = len(
            json.dumps(
                records[-1].to_dict(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        ) + 1
        nbytes = max(1, int(last_line_bytes * tear_fraction))
        log.truncate_tail(min(nbytes, log.size_bytes))
        torn["bytes"] = nbytes
        # The WAL holds every *applied* record, exchanged peer commits
        # included; only shard 1's own commits repopulate commit_log.
        torn["own_before"] = sum(1 for r in records if r.shard_id == 1)

    # All ops land by ~4.5 and the exchange drains before the crash at
    # 6.0, so every commit in the torn tail is covered by a peer's WAL.
    sim.schedule_at(7.0, tear)
    _finish(sim, network, injector)
    return backend, clients, network, torn


def test_torn_tail_recovery_readopts_lost_commits_from_peer_wal():
    backend, clients, network, torn = _run_torn_tail(tear_fraction=0.5)
    assert torn["bytes"] > 0  # the tear really happened
    shard = backend.shards[1]
    assert shard.durable.recoveries == 1
    # The re-adopted commits are back at their original slots: the
    # recovered commit log is as long as the pre-tear one.
    assert len(shard.commit_log) >= torn["own_before"] - 1
    _assert_crash_convergence(backend, clients, network)


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(
    tear_fraction=st.floats(
        min_value=0.01, max_value=0.99, allow_nan=False
    ),
    latency_seed=st.integers(min_value=0, max_value=200),
)
def test_torn_tail_recovery_at_any_tear_point(tear_fraction, latency_seed):
    """Tearing any proper fraction of the last WAL record — from one
    byte to all-but-one — recovers to the same converged state."""
    backend, clients, network, torn = _run_torn_tail(
        tear_fraction, latency_seed
    )
    _assert_crash_convergence(backend, clients, network)


# -- ingest-never-paused witness ---------------------------------------------


_PINNED_SCHEDULE = sorted(
    (round(0.29 * i % 7.7, 3), i,
     ["fill", "fill", "upvote", "downvote"][i % 4], i * 5, i, i * 3)
    for i in range(40)
)


def _fill_toward_survivor(client) -> bool:
    """One fill guaranteed to land at shard 0: fill ``k="x"`` (probed:
    the "x" key group hashes to shard 0 under two shards), or extend a
    row whose key already is "x"."""
    from repro.core.replica import OperationError
    from repro.core.schema import SchemaError

    table = client.replica.table
    for row_id in table.row_ids():
        row = table.get(row_id)
        if row is None:
            continue
        filled = row.value.filled_columns()
        try:
            if "k" not in filled:
                client.fill(row_id, "k", "x")
                return True
            if row.value.get("k") == "x" and "a" not in filled:
                client.fill(row_id, "a", 1)
                return True
        except (OperationError, SchemaError):
            continue
    return False


def test_survivors_never_pause_during_peer_recovery():
    """The witness for "ingest never pauses": while shard 1 is down,
    shard 0 keeps committing operations and its change-stream position
    strictly advances — the crash is invisible to the survivors' own
    clients until heal-time resync.

    The pinned schedule alone cannot witness this: clients c0–c3 all
    home on shard 1 and are force-disconnected at its crash, so the rig
    uses 8 clients (c4–c7 home on shard 0, probed) and drives fills
    routed to shard 0 from a surviving client inside the window.
    """
    plan = FaultPlan(crashes=(ShardCrashWindow(shard_endpoint(1), 3.0, 7.0),))
    sim, network, backend, clients, injector, names = _build_crash_rig(
        2, 8, 5, plan
    )
    survivor_client = next(
        clients[name] for name in names
        if backend.home_shard(name) is backend.shards[0]
    )
    _schedule_ops(sim, clients, names, _PINNED_SCHEDULE)
    probes: list[tuple[float, int, int]] = []
    hits: list[bool] = []

    def probe():
        survivor = backend.shards[0]
        assert not survivor.crashed
        probes.append(
            (sim.now, survivor.changes.position, len(survivor.commit_log))
        )

    sim.schedule_at(3.1, probe)
    for when in (3.5, 4.5, 5.5):
        sim.schedule_at(
            when, lambda: hits.append(_fill_toward_survivor(survivor_client))
        )
    sim.schedule_at(6.9, probe)
    _finish(sim, network, injector)
    assert [e.kind for e in injector.events] == ["crash", "restart"]
    assert any(hits)  # at least one survivor-routed fill was performed
    (t0, pos0, commits0), (t1, pos1, commits1) = probes
    assert t1 > t0
    assert pos1 > pos0          # the survivor's stream kept moving
    assert commits1 > commits0  # ...because it kept *committing*
    _assert_crash_convergence(backend, clients, network)


# -- deterministic replay and checkpoints ------------------------------------


def _fingerprint(crash_seed: int):
    plan = _crash_plan(crash_seed, 2, [])
    sim, network, backend, clients, injector, names = _build_crash_rig(
        2, 4, 5, plan, checkpoint_interval=4
    )
    _schedule_ops(sim, clients, names, _PINNED_SCHEDULE)
    _finish(sim, network, injector)
    _assert_crash_convergence(backend, clients, network)
    committed_json = json.dumps(
        [
            (c.shard_id, c.lseq, c.worker_id, c.timestamp, m.to_dict())
            for c, m in backend.committed_trace()
        ],
        sort_keys=True,
    )
    events = [(e.time, e.kind, e.endpoint, e.purged) for e in injector.events]
    return committed_json, canonical_doc(backend.primary.replica), events


def test_pinned_seed_crash_run_is_deterministically_replayable():
    """Fault plan × crash choreography × recovery replays byte-
    identically for one seed; a different crash seed changes the run."""
    first = _fingerprint(crash_seed=11)
    second = _fingerprint(crash_seed=11)
    assert first == second
    third = _fingerprint(crash_seed=13)
    assert first[2] != third[2]


def test_checkpoint_plus_wal_suffix_recovery():
    """With a tiny checkpoint interval the crashed shard provably
    recovered through the checkpoint path (not pure WAL replay), and
    the WAL itself was never truncated by checkpointing."""
    plan = FaultPlan(crashes=(ShardCrashWindow(shard_endpoint(1), 5.0, 7.0),))
    sim, network, backend, clients, injector, names = _build_crash_rig(
        2, 4, 5, plan, checkpoint_interval=2
    )
    _schedule_ops(sim, clients, names, _PINNED_SCHEDULE)
    _finish(sim, network, injector)
    shard = backend.shards[1]
    assert shard.durable.checkpoints_taken > 0
    assert shard.durable.recoveries == 1
    assert shard.durable.log.records_appended >= len(shard.commit_log)
    _assert_crash_convergence(backend, clients, network)


def test_crash_recovery_under_sanitizer():
    """The aliasing sanitizer leg: recovered replicas are rebuilt from
    logged bytes, so no recovered object may alias a payload another
    replica holds.  (CI re-runs the whole file with
    ``REPRO_NET_SANITIZE=1``; this pinned leg keeps the property in the
    default run too.)"""
    plan = _crash_plan(7, 2, [])
    sim, network, backend, clients, injector, names = _build_crash_rig(
        2, 3, 5, plan, sanitize=True
    )
    _schedule_ops(sim, clients, names, _PINNED_SCHEDULE)
    _finish(sim, network, injector)
    _assert_crash_convergence(backend, clients, network)
