"""Hypothesis property tests on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CandidateTable, DefaultScoring, RowValue
from repro.core.schema import Column, DataType, Schema
from repro.docstore import Collection, apply_update, matches_filter

# -- RowValue algebra -----------------------------------------------------

columns = st.sampled_from(["a", "b", "c", "d"])
cell_values = st.one_of(st.integers(-5, 5), st.sampled_from(["x", "y"]))
row_values = st.dictionaries(columns, cell_values, max_size=4).map(RowValue)


@given(row_values)
def test_subsumption_is_reflexive(value):
    assert value.subsumes(value)


@given(row_values, row_values)
def test_subsumption_is_antisymmetric(a, b):
    if a.subsumes(b) and b.subsumes(a):
        assert a == b


@given(row_values, row_values, row_values)
def test_subsumption_is_transitive(a, b, c):
    if a.subsumes(b) and b.subsumes(c):
        assert a.subsumes(c)


@given(row_values, row_values)
def test_merge_subsumes_both_when_compatible(a, b):
    if a.compatible_with(b):
        merged = a.merge(b)
        assert merged.subsumes(a)
        assert merged.subsumes(b)


@given(row_values, row_values)
def test_merge_is_commutative_when_compatible(a, b):
    if a.compatible_with(b):
        assert a.merge(b) == b.merge(a)


@given(row_values)
def test_hash_consistency(value):
    assert hash(value) == hash(RowValue(dict(value)))


@given(row_values, columns, cell_values)
def test_with_value_then_without_roundtrip(value, column, cell):
    if column in value.filled_columns():
        return
    extended = value.with_value(column, cell)
    assert extended.without_column(column) == value
    assert extended.subsumes(value)


# -- vote-history invariants under random message streams ---------------------

SCHEMA = Schema(
    name="P",
    columns=(Column("k", DataType.INT), Column("v", DataType.INT)),
    primary_key=("k",),
)

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "replace", "upvote", "downvote"]),
        st.integers(0, 5),
        st.integers(0, 2),
        st.integers(0, 2),
    ),
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(ops)
def test_lemma3_invariants_under_random_messages(sequence):
    """Lemma 3: u(r) = UH[r.value] for complete rows and
    d(r) = sum of DH over subsets, after any message stream."""
    table = CandidateTable(SCHEMA, DefaultScoring())
    counter = 0
    for kind, pick, k_val, v_val in sequence:
        if kind == "insert":
            counter += 1
            table.apply_insert(f"r{counter}")
        elif kind == "replace":
            counter += 1
            row_ids = table.row_ids()
            old = row_ids[pick % len(row_ids)] if row_ids else "ghost"
            old_value = (
                table.row(old).value if old in table else RowValue()
            )
            missing = old_value.missing_columns(("k", "v"))
            if not missing:
                continue
            column = missing[0]
            value = k_val if column == "k" else v_val
            table.apply_replace(
                old, f"r{counter}", old_value.with_value(column, value)
            )
        elif kind == "upvote":
            table.apply_upvote(RowValue({"k": k_val, "v": v_val}))
        else:
            subset = {"k": k_val} if pick % 2 else {"k": k_val, "v": v_val}
            table.apply_downvote(RowValue(subset))
    table.check_vote_invariants()


# -- docstore: filters and updates ------------------------------------------

documents = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.one_of(st.integers(-10, 10), st.text(max_size=3), st.booleans()),
    max_size=3,
)


@given(documents, st.sampled_from(["a", "b", "c"]), st.integers(-10, 10))
def test_filter_eq_matches_value(doc, field, value):
    expected = field in doc and not isinstance(doc[field], bool) and doc[
        field
    ] == value
    assert matches_filter(doc, {field: value}) == expected


@given(documents, documents)
def test_set_update_is_idempotent(doc, changes):
    update = {"$set": dict(changes)}
    once = apply_update(doc, update)
    twice = apply_update(once, update)
    assert once == twice


@given(st.lists(documents, max_size=12))
def test_collection_count_matches_inserts(docs):
    coll = Collection("c")
    for doc in docs:
        coll.insert_one(doc)
    assert coll.count() == len(docs)
    assert len(coll.find()) == len(docs)


@given(st.lists(st.integers(-5, 5), min_size=1, max_size=15))
def test_collection_sort_is_total(values):
    coll = Collection("c")
    for value in values:
        coll.insert_one({"n": value})
    out = [d["n"] for d in coll.find(sort=[("n", 1)])]
    assert out == sorted(values)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=15))
def test_indexed_find_equals_scan(keys):
    plain = Collection("plain")
    indexed = Collection("indexed")
    indexed.create_index("k")
    for key in keys:
        plain.insert_one({"_id": f"d{len(plain)}", "k": key})
        indexed.insert_one({"_id": f"d{len(indexed)}", "k": key})
    for probe in range(-1, 7):
        assert [d["_id"] for d in plain.find({"k": probe})] == [
            d["_id"] for d in indexed.find({"k": probe})
        ]


# -- deterministic replay -----------------------------------------------------

def test_rng_streams_make_runs_replayable():
    """Two identical experiment configurations produce byte-identical
    worker traces (the determinism the whole evaluation relies on)."""
    from repro.experiments.harness import CrowdFillExperiment, ExperimentConfig

    config = ExperimentConfig(seed=13, target_rows=5, num_workers=3)
    first = CrowdFillExperiment(config).run()
    second = CrowdFillExperiment(config).run()
    assert [r.to_dict() for r in first.trace] == [
        r.to_dict() for r in second.trace
    ]
    assert first.final_table_records() == second.final_table_records()


def test_determinism_across_hash_seeds():
    """Cross-process determinism: the same config produces the same run
    under different PYTHONHASHSEED values (no hidden reliance on set
    iteration order)."""
    import subprocess
    import sys

    script = (
        "from repro.experiments.harness import CrowdFillExperiment, "
        "ExperimentConfig\n"
        "r = CrowdFillExperiment(ExperimentConfig(seed=5, target_rows=6, "
        "num_workers=3, use_recommender=True)).run()\n"
        "print(round(r.duration or -1, 6), len(r.trace), r.candidate_count)\n"
    )
    outputs = set()
    for hash_seed in ("1", "77"):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin",
                 "PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
            check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1
