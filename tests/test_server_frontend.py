"""Unit tests for the front-end server's REST-style API."""


import pytest

from repro.client import WorkerClient
from repro.core import ThresholdScoring
from repro.core.schema import soccer_player_schema
from repro.docstore import Database
from repro.marketplace import Marketplace
from repro.net import ConstantLatency, Network
from repro.pay import AllocationScheme
from repro.server import ApiError, FrontendServer
from repro.sim import RngStreams, Simulator

SCORING = ThresholdScoring(2)


def spec_body(name="players", cardinality=1):
    return {
        "name": name,
        "schema": soccer_player_schema().to_dict(),
        "scoring": {"kind": "threshold", "min_votes": 2},
        "template": {
            "rows": [
                {"label": chr(ord("a") + i), "cells": {}}
                for i in range(cardinality)
            ]
        },
        "budget": 10.0,
    }


@pytest.fixture
def front():
    return FrontendServer(Database("test"))


def test_create_and_get_spec(front):
    created = front.create_spec(spec_body())
    spec = front.get_spec(created["id"])
    assert spec["name"] == "players"
    assert spec["status"] == "draft"
    assert spec["budget"] == 10.0


def test_duplicate_name_conflict(front):
    front.create_spec(spec_body())
    with pytest.raises(ApiError) as excinfo:
        front.create_spec(spec_body())
    assert excinfo.value.status == 409


def test_invalid_schema_rejected(front):
    body = spec_body()
    body["schema"] = {"name": "T", "columns": []}
    with pytest.raises(ApiError) as excinfo:
        front.create_spec(body)
    assert excinfo.value.status == 400


def test_invalid_template_rejected(front):
    body = spec_body()
    body["template"] = {"rows": [{"label": "a", "cells": {"ghost": "=1"}}]}
    with pytest.raises(ApiError) as excinfo:
        front.create_spec(body)
    assert excinfo.value.status == 400


def test_negative_budget_rejected(front):
    body = spec_body()
    body["budget"] = -5
    with pytest.raises(ApiError):
        front.create_spec(body)


def test_get_unknown_spec_404(front):
    with pytest.raises(ApiError) as excinfo:
        front.get_spec("ghost")
    assert excinfo.value.status == 404


def test_list_update_delete_specs(front):
    created = front.create_spec(spec_body())
    assert len(front.list_specs()) == 1
    body = spec_body(name="players2")
    front.update_spec(created["id"], body)
    assert front.get_spec(created["id"])["name"] == "players2"
    front.delete_spec(created["id"])
    assert front.list_specs() == []
    with pytest.raises(ApiError):
        front.delete_spec(created["id"])


def test_full_collection_lifecycle(front):
    """create -> launch -> workers fill -> collect -> pay."""
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    marketplace = Marketplace(sim)
    created = front.create_spec(spec_body(cardinality=1))
    spec_id = created["id"]
    clients = {}

    def on_accept(worker_id, backend):
        client = WorkerClient(
            worker_id, soccer_player_schema(), SCORING, network,
            streams=RngStreams(len(clients)),
        )
        client.bootstrap(backend.attach_client(worker_id))
        clients[worker_id] = client

    launched = front.launch(
        spec_id, sim, network, marketplace, max_workers=2,
        on_worker_accept=on_accept,
    )
    task_id = launched["task_id"]
    marketplace.accept(task_id, "alice")
    marketplace.accept(task_id, "bob")
    assert set(clients) == {"alice", "bob"}
    assert front.get_spec(spec_id)["status"] == "collecting"

    # Alice completes the single required row; Bob endorses it.
    alice, bob = clients["alice"], clients["bob"]
    row_id = alice.replica.table.row_ids()[0]
    for column, value in {
        "name": "Messi", "nationality": "Argentina",
        "position": "FW", "caps": 83, "goals": 37,
    }.items():
        row_id = alice.fill(row_id, column, value)
    sim.run()
    bob.upvote(row_id)
    sim.run()

    status = front.status(spec_id)
    assert status["completed"]
    assert status["final_rows"] == 1

    collected = front.collect(spec_id)
    assert collected["final_table"] == [
        {"name": "Messi", "nationality": "Argentina", "position": "FW",
         "caps": 83, "goals": 37}
    ]
    # Results were persisted to the document store.
    assert front.db.collection("results").count({"spec_id": spec_id}) == 1

    payments = front.pay_workers(
        spec_id, marketplace, AllocationScheme.UNIFORM
    )
    assert payments["by_worker"]["alice"] > payments["by_worker"]["bob"] > 0
    assert marketplace.ledger.bonus_for("alice") == pytest.approx(
        payments["by_worker"]["alice"]
    )
    assert front.get_spec(spec_id)["status"] == "paid"

    front.finish(spec_id)
    with pytest.raises(ApiError):
        front.backend_for(spec_id)


def test_launch_twice_conflicts(front):
    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    marketplace = Marketplace(sim)
    spec_id = front.create_spec(spec_body())["id"]
    front.launch(spec_id, sim, network, marketplace, max_workers=1)
    with pytest.raises(ApiError) as excinfo:
        front.launch(spec_id, sim, network, marketplace, max_workers=1)
    assert excinfo.value.status == 409


def test_update_active_spec_conflicts(front):
    sim = Simulator()
    network = Network(sim, streams=RngStreams(0))
    marketplace = Marketplace(sim)
    spec_id = front.create_spec(spec_body())["id"]
    front.launch(spec_id, sim, network, marketplace, max_workers=1)
    with pytest.raises(ApiError):
        front.update_spec(spec_id, spec_body(name="other"))
    with pytest.raises(ApiError):
        front.delete_spec(spec_id)


def test_status_requires_active_collection(front):
    spec_id = front.create_spec(spec_body())["id"]
    with pytest.raises(ApiError) as excinfo:
        front.status(spec_id)
    assert excinfo.value.status == 404


def test_worker_activity_aggregation(front):
    """The bookkeeping endpoint summarizes the persisted trace."""
    sim = Simulator()
    network = Network(sim, default_latency=ConstantLatency(0.01),
                      streams=RngStreams(0))
    marketplace = Marketplace(sim)
    spec_id = front.create_spec(spec_body(name="agg", cardinality=1))["id"]
    clients = {}

    def on_accept(worker_id, backend):
        client = WorkerClient(
            worker_id, soccer_player_schema(), SCORING, network,
            streams=RngStreams(len(clients)),
        )
        client.bootstrap(backend.attach_client(worker_id))
        clients[worker_id] = client

    launched = front.launch(
        spec_id, sim, network, marketplace, max_workers=2,
        on_worker_accept=on_accept,
    )
    marketplace.accept(launched["task_id"], "alice")
    marketplace.accept(launched["task_id"], "bob")
    alice, bob = clients["alice"], clients["bob"]
    row_id = alice.replica.table.row_ids()[0]
    for column, value in {
        "name": "Messi", "nationality": "Argentina",
        "position": "FW", "caps": 83, "goals": 37,
    }.items():
        row_id = alice.fill(row_id, column, value)
    sim.run()
    bob.upvote(row_id)
    sim.run()

    with pytest.raises(ApiError):
        front.worker_activity(spec_id)  # trace not persisted yet

    front.collect(spec_id)
    activity = front.worker_activity(spec_id)
    by_worker = {row["_id"]: row for row in activity}
    assert set(by_worker) == {"alice", "bob"}
    # Alice: 5 fills + 1 auto-upvote; Bob: 1 upvote.
    assert by_worker["alice"]["actions"] == 6
    assert by_worker["bob"]["actions"] == 1
    assert "replace" in by_worker["alice"]["kinds"]
    assert by_worker["alice"]["first_action"] <= by_worker["alice"]["last_action"]
    # Sorted most-active first; CC excluded entirely.
    assert activity[0]["_id"] == "alice"
