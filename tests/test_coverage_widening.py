"""Coverage-widening tests for branches the main suites skim past."""

import pytest

from repro.constraints import Template
from repro.core import (
    DefaultScoring,
    Replica,
    RowValue,
    ThresholdScoring,
    TraceRecord,
)
from repro.core.schema import soccer_player_schema
from repro.microtask import MicrotaskCoordinator
from repro.pay import (
    AllocationScheme,
    CompensationEstimator,
    allocate,
    analyze_contributions,
)
from repro.sim import Simulator

SCHEMA = soccer_player_schema()
FULL = {
    "name": "Messi", "nationality": "Argentina",
    "position": "FW", "caps": 83, "goals": 37,
}


class TraceBuilder:
    """Replica-backed trace builder with explicit timestamps."""

    def __init__(self, scoring=None):
        self.master = Replica("server", SCHEMA, scoring or DefaultScoring())
        self.cc = Replica("CC", SCHEMA, scoring or DefaultScoring())
        self.trace = []
        self._seq = 0

    def cc_insert(self):
        message = self.cc.insert()
        self.master.receive(message)
        return message.row_id

    def fill(self, worker, row_id, column, value, at):
        replica = Replica(f"{worker}x{self._seq}", SCHEMA, DefaultScoring())
        row = self.master.table.row(row_id)
        replica.table.load_row(row_id, row.value, 0, 0)
        message = replica.fill(row_id, column, value)
        self._seq += 1
        self.master.receive(message)
        record = TraceRecord(seq=self._seq, timestamp=at,
                             worker_id=worker, message=message)
        self.trace.append(record)
        return message.new_id, record


class TestEstimatorDualSlowdown:
    def test_key_weight_adjusts_upward_under_slowdown(self):
        """Progressively slower name completions raise the projected
        key weight (the section 5.3 dual-weighted adjustment)."""
        template = Template.cardinality(8)
        estimator = CompensationEstimator(
            SCHEMA, template, ThresholdScoring(2), budget=10.0,
            scheme=AllocationScheme.DUAL_WEIGHTED,
        )
        builder = TraceBuilder(ThresholdScoring(2))
        at = 0.0
        estimates = []
        for k in range(4):
            row_id = builder.cc_insert()
            # Same worker; name entries take 10, 20, 30, 40 seconds.
            at += 10.0 * (k + 1)
            _, record = builder.fill("w0", row_id, "name", f"P{k}", at)
            estimates.append(
                estimator.on_record(record, builder.master.table)
            )
        assert estimator._estimated_z("name") > 0
        base = estimator.default_weight
        adjusted = estimator._dual_adjusted_weight("name", base)
        assert adjusted > base

    def test_position_weight_for_later_key_values_is_higher(self):
        template = Template.cardinality(8)
        estimator = CompensationEstimator(
            SCHEMA, template, ThresholdScoring(2), budget=10.0,
            scheme=AllocationScheme.DUAL_WEIGHTED,
        )
        builder = TraceBuilder(ThresholdScoring(2))
        at = 0.0
        records = []
        for k in range(5):
            row_id = builder.cc_insert()
            at += 10.0 * (k + 1)
            _, record = builder.fill("w0", row_id, "name", f"P{k}", at)
            records.append(record)
            estimator.on_record(record, builder.master.table)
        z = estimator._estimated_z("name")
        assert z > 0
        # Position-aware weights grow with k at fixed base weight.
        first = estimator._dual_position_weight(
            "name", 10.0, records[0].message
        )
        last = estimator._dual_position_weight(
            "name", 10.0, records[-1].message
        )
        assert last > first


class TestAllocationEdges:
    def test_timeline_empty_for_noncontributing_worker(self):
        builder = TraceBuilder()
        row_id = builder.cc_insert()
        at = 0.0
        for column, value in FULL.items():
            at += 10.0
            row_id, _ = builder.fill("w1", row_id, column, value, at)
        analysis = analyze_contributions(
            SCHEMA, builder.master.table.final_rows(), builder.trace
        )
        result = allocate(SCHEMA, builder.trace, analysis, 5.0,
                          AllocationScheme.UNIFORM)
        assert result.timeline_for("ghost", builder.trace) == []

    def test_no_contributions_means_full_unspent(self):
        builder = TraceBuilder()
        row_id = builder.cc_insert()
        builder.fill("w1", row_id, "name", "Orphan", 1.0)
        # No final rows -> no cells, no votes.
        analysis = analyze_contributions(SCHEMA, [], builder.trace)
        result = allocate(SCHEMA, builder.trace, analysis, 5.0,
                          AllocationScheme.DUAL_WEIGHTED)
        assert result.total_allocated == 0.0
        assert result.unspent == pytest.approx(5.0)
        assert result.by_worker == {}


class TestMicrotaskStats:
    def test_total_tasks_property(self):
        coordinator = MicrotaskCoordinator(Simulator(), SCHEMA, 3)
        assert coordinator.stats.total_tasks == 3  # initial enumerates

    def test_slot_row_value_reflects_fills(self):
        coordinator = MicrotaskCoordinator(Simulator(), SCHEMA, 1)
        slot = coordinator.slots[0]
        assert slot.row_value() == RowValue({})


class TestTemplateValidationWithPredicates:
    def test_nonequality_predicates_skip_type_validation(self):
        template = Template.from_predicates([{"caps": ">=100"}])
        template.validate_against(SCHEMA)  # no type check for >= operand

    def test_predicate_on_unknown_column_still_rejected(self):
        from repro.constraints import TemplateError

        template = Template.from_predicates([{"ghost": ">=100"}])
        with pytest.raises(TemplateError):
            template.validate_against(SCHEMA)


class TestReportQuickFunction:
    def test_generate_report_quick_contains_all_core_sections(self):
        from repro.experiments.report import generate_report

        text = generate_report(seed=3, quick=True)
        for section in ("E1", "E2", "E3", "E5", "E6"):
            assert section in text
        assert "A11" not in text  # quick mode skips the studies
