"""Unit tests for the simulated marketplace and payment ledger."""

import random

import pytest

from repro.marketplace import Marketplace, MarketplaceError, PaymentLedger
from repro.sim import RngStreams, Simulator


@pytest.fixture
def market():
    return Marketplace(Simulator(), streams=RngStreams(0))


def post(market, **kwargs):
    defaults = dict(
        title="Fill the table",
        description="soccer players",
        base_reward=0.1,
        max_assignments=3,
    )
    defaults.update(kwargs)
    return market.post_task(**defaults)


def test_post_and_lookup(market):
    task = post(market)
    assert market.task(task.task_id) is task
    assert market.tasks() == [task]
    assert task.open_slots == 3


def test_post_validation(market):
    with pytest.raises(MarketplaceError):
        post(market, base_reward=-1)
    with pytest.raises(MarketplaceError):
        post(market, max_assignments=0)


def test_unknown_task_rejected(market):
    with pytest.raises(MarketplaceError):
        market.task("ghost")


def test_accept_fires_redirect_callback(market):
    accepted = []
    task = post(market, on_accept=accepted.append)
    market.accept(task.task_id, "w1")
    assert accepted == ["w1"]


def test_accept_records_assignment_time():
    sim = Simulator()
    market = Marketplace(sim)
    task = post(market)
    sim.schedule(5.0, lambda: market.accept(task.task_id, "w1"))
    sim.run()
    assert task.assignments[0].accepted_at == 5.0


def test_double_accept_rejected(market):
    task = post(market)
    market.accept(task.task_id, "w1")
    with pytest.raises(MarketplaceError):
        market.accept(task.task_id, "w1")


def test_full_task_rejects_more_workers(market):
    task = post(market, max_assignments=1)
    market.accept(task.task_id, "w1")
    with pytest.raises(MarketplaceError):
        market.accept(task.task_id, "w2")
    assert task.open_slots == 0


def test_closed_task_rejects_accepts(market):
    task = post(market)
    market.close_task(task.task_id)
    with pytest.raises(MarketplaceError):
        market.accept(task.task_id, "w1")


def test_submit_and_approve_pays_base_reward(market):
    task = post(market, base_reward=0.5)
    assignment = market.accept(task.task_id, "w1")
    market.submit(assignment.assignment_id)
    market.approve_assignment(assignment.assignment_id)
    assert assignment.status == "approved"
    assert market.ledger.total_for("w1") == pytest.approx(0.5)


def test_approve_is_idempotent(market):
    task = post(market, base_reward=0.5)
    assignment = market.accept(task.task_id, "w1")
    market.approve_assignment(assignment.assignment_id)
    market.approve_assignment(assignment.assignment_id)
    assert market.ledger.total_for("w1") == pytest.approx(0.5)


def test_approve_all(market):
    task = post(market, base_reward=0.2)
    market.accept(task.task_id, "w1")
    market.accept(task.task_id, "w2")
    market.approve_all(task.task_id)
    assert market.ledger.total() == pytest.approx(0.4)


def test_unknown_assignment_rejected(market):
    with pytest.raises(MarketplaceError):
        market.approve_assignment("ghost")
    with pytest.raises(MarketplaceError):
        market.submit("ghost")


def test_bonus_channel(market):
    market.grant_bonus("w1", 3.49, reason="crowdfill")
    assert market.ledger.bonus_for("w1") == pytest.approx(3.49)
    assert market.ledger.total_for("w1") == pytest.approx(3.49)


def test_scheduled_arrivals_trickle_in():
    sim = Simulator()
    market = Marketplace(sim, streams=RngStreams(7))
    accepted = []
    task = post(market, max_assignments=5, on_accept=accepted.append)
    market.schedule_arrivals(
        task.task_id, [f"w{i}" for i in range(5)], mean_interarrival=10.0
    )
    sim.run()
    assert accepted == [f"w{i}" for i in range(5)]
    times = [a.accepted_at for a in task.assignments]
    assert times == sorted(times)
    assert times[-1] > 0


def test_arrivals_beyond_capacity_are_dropped_quietly():
    sim = Simulator()
    market = Marketplace(sim, streams=RngStreams(7))
    task = post(market, max_assignments=2)
    market.schedule_arrivals(task.task_id, ["a", "b", "c", "d"])
    sim.run()
    assert len(task.assignments) == 2


def test_ledger_by_worker_and_validation():
    ledger = PaymentLedger()
    ledger.pay_base("w1", 0.1)
    ledger.pay_bonus("w1", 1.0)
    ledger.pay_bonus("w2", 2.0)
    assert ledger.by_worker() == {"w1": pytest.approx(1.1), "w2": 2.0}
    with pytest.raises(ValueError):
        ledger.pay_bonus("w1", -1)
