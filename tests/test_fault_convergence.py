"""Convergence-under-faults property suite.

The convergence theorem (paper section 2.4.2) assumes reliable in-order
delivery.  These tests drive the *full* production assembly — back-end
server with sessions and bounded op-log, worker clients with offline
buffering — through random operation schedules overlaid with random
seeded :class:`FaultPlan`s (disconnect/rejoin windows, partitions,
latency spikes), and assert that once every fault heals and the network
quiesces:

- every client's copy is identical to the master (rows, vote counts,
  and vote histories);
- the trace replayed from scratch reproduces the master exactly;
- the incrementally-maintained probable and final views still match
  their from-scratch oracles;
- the Central Client's probable-row invariant (PRI) holds.

Run the heavy cases with ``-m slow`` deselected locally if needed:
``pytest -m 'not slow'``.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Template
from repro.constraints.probable import (
    probable_rows,
    probable_rows_from_scratch,
)
from repro.client import WorkerClient
from repro.core import Column, DataType, OperationError, Schema, SchemaError
from repro.core.scoring import ThresholdScoring
from repro.net import FaultInjector, FaultPlan, Network, PartitionWindow
from repro.net import UniformLatency
from repro.server.backend import BackendServer
from repro.server.shard import ShardedBackend, shard_endpoint
from repro.server.tracelog import replay_trace, trace_to_dicts
from repro.sim import RngStreams, Simulator
from repro.sim.rng import RngStreams

SCHEMA = Schema(
    name="Mini",
    columns=(
        Column("k", DataType.STRING),
        Column("a", DataType.INT),
        Column("b", DataType.STRING),
    ),
    primary_key=("k",),
)

VALUE_POOLS = {"k": ["x", "y", "z"], "a": [1, 2, 3], "b": ["p", "q"]}
SCORING = ThresholdScoring(2)
HORIZON = 10.0


def _perform(client: WorkerClient, op_kind, row_pick, column_pick, value_pick):
    """Attempt one random worker action; skipped when preconditions or
    interface vote policies reject it (as the UI would)."""
    try:
        row_ids = client.replica.table.row_ids()
        if not row_ids:
            return
        row_id = row_ids[row_pick % len(row_ids)]
        if op_kind == "fill":
            column = SCHEMA.column_names[column_pick % len(SCHEMA.column_names)]
            pool = VALUE_POOLS[column]
            client.fill(row_id, column, pool[value_pick % len(pool)])
        elif op_kind == "upvote":
            client.upvote(row_id)
        else:
            client.downvote(row_id)
    except (OperationError, SchemaError):
        return


def _run_faulty_schedule(
    num_clients: int,
    schedule,
    fault_seed: int,
    latency_seed: int,
    oplog_capacity: int = 512,
    plan: FaultPlan | None = None,
    shards: int | None = None,
):
    """One full run: build the rig, overlay faults, drive ops, heal, drain.

    With ``shards=N`` the rig runs the sharded multi-backend instead of
    the plain server — the same properties must hold (the facade's
    primary shard plays the master's role in the assertions).
    """
    sim = Simulator()
    network = Network(
        sim,
        default_latency=UniformLatency(0.01, 1.5),
        streams=RngStreams(latency_seed),
    )
    if shards is None:
        backend = BackendServer(
            sim,
            network,
            SCHEMA,
            SCORING,
            Template.cardinality(2),
            oplog_capacity=oplog_capacity,
        )
    else:
        backend = ShardedBackend(
            sim,
            network,
            SCHEMA,
            SCORING,
            Template.cardinality(2),
            shards=shards,
            oplog_capacity=oplog_capacity,
        )
    names = [f"c{i}" for i in range(num_clients)]
    clients: dict[str, WorkerClient] = {}
    rng_streams = RngStreams(latency_seed)
    for name in names:
        # Stable per-name stream: builtin hash() of strings varies per
        # process (PYTHONHASHSEED), which crowdlint DET001 flags.
        client = WorkerClient(
            name, SCHEMA, SCORING, network, streams=rng_streams
        )
        client.bootstrap(backend.attach_client(name))
        clients[name] = client

    if plan is None:
        plan = FaultPlan.generate(
            random.Random(fault_seed),
            names,
            horizon=HORIZON,
            outage_prob=0.6,
            min_outage=0.5,
            max_outage=6.0,
            shard_groups=(
                tuple((shard_endpoint(k),) for k in range(shards))
                if shards is not None and shards > 1
                else None
            ),
        )
    injector = FaultInjector(sim, network, plan)
    if shards is not None:
        backend.bind_faults(injector)
    for name in plan.faulted_endpoints():
        client = clients[name]
        injector.bind(
            name,
            on_disconnect=lambda c=client: (
                backend.detach_client(c.worker_id),
                c.disconnect(),
            ),
            on_reconnect=lambda c=client: c.reconnect(backend),
            on_requeue=client.requeue_unsent,
        )
    injector.install()
    backend.start()

    for at, client_pick, op_kind, row_pick, column_pick, value_pick in schedule:
        client = clients[names[client_pick % num_clients]]
        sim.schedule_at(
            at,
            lambda c=client, k=op_kind, r=row_pick, col=column_pick,
            v=value_pick: _perform(c, k, r, col, v),
        )
    sim.run()
    injector.force_reconnect_all()
    sim.run()
    assert network.quiescent()
    return backend, clients, injector


def _assert_converged_and_views_consistent(backend, clients):
    reference = backend.replica.snapshot()
    reference_history = backend.replica.table.history_snapshot()
    for client in clients.values():
        assert client.replica.snapshot() == reference
        assert client.replica.table.history_snapshot() == reference_history
        client.replica.table.check_vote_invariants()
    backend.replica.table.check_vote_invariants()
    # PRI survived the churn (the CC is colocated and lost nothing).
    assert backend.central.pri_holds()
    # Incremental views equal their from-scratch oracles, everywhere.
    for table in [backend.replica.table] + [
        c.replica.table for c in clients.values()
    ]:
        incremental = sorted(row.row_id for row in probable_rows(table))
        oracle = sorted(
            row.row_id for row in probable_rows_from_scratch(table)
        )
        assert incremental == oracle
    # The full trace replayed onto a fresh table reproduces the master:
    # rows, votes, histories, final table.
    replayed = replay_trace(SCHEMA, SCORING, backend.trace)
    assert replayed.snapshot() == reference
    assert replayed.history_snapshot() == reference_history
    assert sorted(r.row_id for r in replayed.final_rows()) == sorted(
        r.row_id for r in backend.replica.table.final_rows()
    )
    assert sorted(r.row_id for r in probable_rows_from_scratch(replayed)) == \
        sorted(r.row_id for r in probable_rows(backend.replica.table))


operation = st.tuples(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    st.integers(min_value=0, max_value=9),  # client pick
    st.sampled_from(["fill", "fill", "fill", "upvote", "downvote"]),
    st.integers(min_value=0, max_value=9),  # row pick
    st.integers(min_value=0, max_value=9),  # column pick
    st.integers(min_value=0, max_value=9),  # value pick
)


@pytest.mark.slow
@settings(max_examples=120, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=35),
    num_clients=st.integers(min_value=2, max_value=5),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=1_000),
)
def test_convergence_under_random_fault_plans(
    schedule, num_clients, fault_seed, latency_seed
):
    backend, clients, injector = _run_faulty_schedule(
        num_clients, sorted(schedule), fault_seed, latency_seed
    )
    _assert_converged_and_views_consistent(backend, clients)


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(
    schedule=st.lists(operation, min_size=5, max_size=30),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=200),
)
def test_convergence_with_tiny_oplog_forces_snapshot_resyncs(
    schedule, fault_seed, latency_seed
):
    """With a 4-entry op-log most rejoins must take the snapshot path —
    convergence may not depend on which path resync takes."""
    backend, clients, injector = _run_faulty_schedule(
        3, sorted(schedule), fault_seed, latency_seed, oplog_capacity=4
    )
    _assert_converged_and_views_consistent(backend, clients)


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=25),
    start=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    length=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    latency_seed=st.integers(min_value=0, max_value=200),
)
def test_convergence_under_server_side_partition(
    schedule, start, length, latency_seed
):
    """A partition window cuts off several clients at once; after it
    heals everyone converges."""
    plan = FaultPlan(
        partitions=(
            PartitionWindow(("c0", "c2"), start=start, end=start + length),
        )
    )
    backend, clients, injector = _run_faulty_schedule(
        4, sorted(schedule), fault_seed=0, latency_seed=latency_seed, plan=plan
    )
    assert [e.kind for e in injector.events[:2]] == ["disconnect", "disconnect"]
    _assert_converged_and_views_consistent(backend, clients)


@pytest.mark.slow
@settings(max_examples=30, deadline=None)
@given(
    schedule=st.lists(operation, min_size=1, max_size=30),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    latency_seed=st.integers(min_value=0, max_value=500),
)
def test_convergence_core_properties_hold_sharded(
    schedule, fault_seed, latency_seed
):
    """The suite's core convergence properties are not single-server
    artifacts: the same rig run against the sharded multi-backend
    (client churn plus randomly drawn shard-partition windows) upholds
    every one of them, with the primary shard as the master."""
    backend, clients, injector = _run_faulty_schedule(
        4, sorted(schedule), fault_seed, latency_seed, shards=2
    )
    assert backend.fully_exchanged()
    _assert_converged_and_views_consistent(backend, clients)
    for shard in backend.shards:
        assert shard.replica.snapshot() == backend.replica.snapshot()


# -- deterministic replay -----------------------------------------------------


def _trace_fingerprint(num_clients, schedule, fault_seed, latency_seed):
    backend, clients, injector = _run_faulty_schedule(
        num_clients, schedule, fault_seed, latency_seed, oplog_capacity=16
    )
    trace_json = json.dumps(trace_to_dicts(backend.trace), sort_keys=True)
    events = [(e.time, e.kind, e.endpoint, e.purged) for e in injector.events]
    return trace_json, events


def test_deterministic_replay_same_seed_same_fault_plan():
    """The DES's seedable-interleaving promise survives fault injection:
    two runs of one seed + one FaultPlan yield byte-identical traces and
    identical fault-event logs."""
    schedule = sorted(
        (round(0.37 * i % 7.9, 3), i, ["fill", "fill", "upvote", "downvote"][i % 4],
         i * 3, i, i * 7)
        for i in range(25)
    )
    first = _trace_fingerprint(4, schedule, fault_seed=11, latency_seed=5)
    second = _trace_fingerprint(4, schedule, fault_seed=11, latency_seed=5)
    assert first[0] == second[0]  # byte-identical serialized trace
    assert first[1] == second[1]  # identical fault schedule execution
    # A different fault seed genuinely changes the run (the plan is a
    # real variable, not dead configuration).
    third = _trace_fingerprint(4, schedule, fault_seed=12, latency_seed=5)
    assert first[1] != third[1]
