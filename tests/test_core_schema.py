"""Unit tests for schemas, columns, and data types."""

import pytest

from repro.core import Column, DataType, Schema, SchemaError
from repro.core.schema import soccer_player_schema


def test_datatype_string():
    DataType.STRING.validate("x")
    with pytest.raises(SchemaError):
        DataType.STRING.validate(5)


def test_datatype_int_rejects_bool():
    DataType.INT.validate(5)
    with pytest.raises(SchemaError):
        DataType.INT.validate(True)
    with pytest.raises(SchemaError):
        DataType.INT.validate(5.0)


def test_datatype_float_accepts_int():
    DataType.FLOAT.validate(5)
    DataType.FLOAT.validate(5.5)
    with pytest.raises(SchemaError):
        DataType.FLOAT.validate("5.5")


def test_datatype_bool():
    DataType.BOOL.validate(True)
    with pytest.raises(SchemaError):
        DataType.BOOL.validate(1)


def test_datatype_date():
    DataType.DATE.validate("1987-06-24")
    with pytest.raises(SchemaError):
        DataType.DATE.validate("24/06/1987")
    with pytest.raises(SchemaError):
        DataType.DATE.validate("1987-13-01")


def test_column_domain_enforced():
    column = Column("position", domain=frozenset({"GK", "FW"}))
    column.validate("GK")
    with pytest.raises(SchemaError):
        column.validate("XX")


def test_column_domain_values_typechecked():
    with pytest.raises(SchemaError):
        Column("caps", DataType.INT, domain=frozenset({"eighty"}))


def test_column_empty_name_rejected():
    with pytest.raises(SchemaError):
        Column("")


def test_schema_requires_columns():
    with pytest.raises(SchemaError):
        Schema(name="T", columns=())


def test_schema_duplicate_columns_rejected():
    with pytest.raises(SchemaError):
        Schema(name="T", columns=(Column("a"), Column("a")))


def test_schema_default_key_is_all_columns():
    schema = Schema(name="T", columns=(Column("a"), Column("b")))
    assert schema.key_columns == ("a", "b")
    assert schema.non_key_columns == ()


def test_schema_unknown_key_column_rejected():
    with pytest.raises(SchemaError):
        Schema(name="T", columns=(Column("a"),), primary_key=("b",))


def test_schema_duplicate_key_rejected():
    with pytest.raises(SchemaError):
        Schema(name="T", columns=(Column("a"),), primary_key=("a", "a"))


def test_soccer_schema_shape():
    schema = soccer_player_schema()
    assert schema.column_names == (
        "name", "nationality", "position", "caps", "goals",
    )
    assert schema.key_columns == ("name", "nationality")
    assert schema.non_key_columns == ("position", "caps", "goals")


def test_soccer_schema_with_dob():
    schema = soccer_player_schema(include_dob=True)
    assert "dob" in schema.column_names
    assert schema.column("dob").dtype is DataType.DATE


def test_schema_column_lookup():
    schema = soccer_player_schema()
    assert schema.column("caps").dtype is DataType.INT
    assert schema.has_column("caps")
    assert not schema.has_column("ghost")
    with pytest.raises(SchemaError):
        schema.column("ghost")


def test_validate_value_and_assignment():
    schema = soccer_player_schema()
    schema.validate_value("caps", 80)
    with pytest.raises(SchemaError):
        schema.validate_value("caps", "eighty")
    with pytest.raises(SchemaError):
        schema.validate_value("position", "STRIKER")
    schema.validate_assignment({"name": "X", "caps": 80})


def test_schema_dict_roundtrip():
    schema = soccer_player_schema(include_dob=True)
    restored = Schema.from_dict(schema.to_dict())
    assert restored == schema


def test_schema_dict_roundtrip_preserves_domain():
    schema = soccer_player_schema()
    restored = Schema.from_dict(schema.to_dict())
    assert restored.column("position").domain == frozenset(
        {"GK", "DF", "MF", "FW"}
    )
