"""Tests for the section 8 adversarial-workers experiment."""

import pytest

from repro.experiments import ExperimentConfig, run_adversary_sweep


@pytest.fixture(scope="module")
def small_base():
    return ExperimentConfig(seed=7, num_workers=3, target_rows=6)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        run_adversary_sweep("saboteur")


def test_spammers_earn_less_per_action(small_base):
    report = run_adversary_sweep(
        "spammer", seed=7, adversary_counts=(0, 2), base_config=small_base
    )
    assert report.scheme_discourages_adversary()
    assert all(outcome.completed for outcome in report.outcomes)
    assert "spammer" in report.format_table()


def test_spammers_do_not_poison_final_table(small_base):
    report = run_adversary_sweep(
        "spammer", seed=7, adversary_counts=(2,), base_config=small_base
    )
    assert report.outcomes[0].accuracy >= 0.8


def test_copiers_exploit_the_scheme(small_base):
    """The paper's open problem: blind endorsement pays per action at
    least as well as honest work."""
    report = run_adversary_sweep(
        "copier", seed=7, adversary_counts=(0, 2), base_config=small_base
    )
    with_copiers = report.outcomes[-1]
    assert with_copiers.adversary_actions > 0
    assert with_copiers.adversary_rate > 0
    assert "copier" in report.format_table()


def test_outcome_rate_properties():
    from repro.experiments.adversarial import AdversaryOutcome

    outcome = AdversaryOutcome(
        num_adversaries=1, completed=True, duration=10.0, accuracy=1.0,
        adversary_pay=1.0, adversary_actions=4,
        diligent_pay=9.0, diligent_actions=30,
    )
    assert outcome.adversary_rate == pytest.approx(0.25)
    assert outcome.diligent_rate == pytest.approx(0.3)
    empty = AdversaryOutcome(
        num_adversaries=0, completed=True, duration=None, accuracy=1.0,
        adversary_pay=0.0, adversary_actions=0,
        diligent_pay=0.0, diligent_actions=0,
    )
    assert empty.adversary_rate == 0.0
    assert empty.diligent_rate == 0.0
