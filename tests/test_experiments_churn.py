"""The churn demo scenario: collection survives worker disconnects.

Acceptance criterion from the fault-injection milestone: with at least
30% of the crew disconnecting (and rejoining) mid-run, the collection
still terminates with a final table satisfying the constraint template,
and every client copy converges to the master once the faults heal.
"""

import pytest

from repro.experiments import (
    ChurnConfig,
    ExperimentConfig,
    build_churn_plan,
    run_churn_experiment,
)


def small_config(**churn_kwargs):
    base = ExperimentConfig(
        seed=7,
        num_workers=6,
        target_rows=8,
        max_sim_time=2400.0,
    )
    defaults = dict(
        base=base,
        disconnect_fraction=0.34,
        first_outage=60.0,
        outage_spread=500.0,
        min_outage=20.0,
        max_outage=180.0,
        waves=2,
    )
    defaults.update(churn_kwargs)
    return ChurnConfig(**defaults)


def test_build_churn_plan_is_deterministic_and_covers_fraction():
    config = small_config()
    ids = [f"worker-{i}" for i in range(6)]
    plan_a = build_churn_plan(config, ids)
    plan_b = build_churn_plan(config, ids)
    assert plan_a == plan_b
    # ceil(0.34 * 6) = 3 victims, 2 windows each.
    assert plan_a.faulted_endpoints() == ids[:3]
    assert len(plan_a.disconnects) == 6


@pytest.mark.slow
def test_collection_survives_30_percent_churn():
    report = run_churn_experiment(small_config())
    assert report.completed and report.template_satisfied
    assert report.all_converged
    assert len(report.victims) >= 2
    assert report.rejoined_workers >= 1
    assert report.incremental_resyncs + report.snapshot_resyncs >= 1
    # Faults were real: link traffic was actually lost and recovered.
    assert report.fault_events >= 2


@pytest.mark.slow
def test_tiny_oplog_forces_snapshot_resyncs_and_still_converges():
    report = run_churn_experiment(
        small_config(oplog_capacity=4, min_outage=120.0, max_outage=400.0)
    )
    assert report.completed
    assert report.all_converged
    assert report.snapshot_resyncs >= 1


@pytest.mark.slow
def test_churn_run_is_reproducible():
    first = run_churn_experiment(small_config())
    second = run_churn_experiment(small_config())
    assert first.duration == second.duration
    assert first.accuracy == second.accuracy
    assert first.incremental_resyncs == second.incremental_resyncs
    assert first.snapshot_resyncs == second.snapshot_resyncs
    assert first.messages_dropped == second.messages_dropped
