"""Tests for budget-free pricing (reservation wage, budget suggestion)."""

import pytest

from repro.constraints import Template
from repro.core import (
    RowValue,
    ThresholdScoring,
    TraceRecord,
    UpvoteMessage,
)
from repro.core.schema import soccer_player_schema
from repro.pay import (
    AllocationScheme,
    effective_wages,
    estimate_reservation_wage,
    suggest_budget,
    wage_report,
)
from repro.pay.pricing import expected_worker_seconds
from repro.workers.profile import ActionLatencies

SCHEMA = soccer_player_schema()
SCORING = ThresholdScoring(2)


def record(seq, t, worker, auto=False):
    return TraceRecord(
        seq=seq, timestamp=t, worker_id=worker,
        message=UpvoteMessage(value=RowValue({"name": "X"}), auto=auto),
    )


class TestEffectiveWages:
    def test_wage_from_span_and_payment(self):
        trace = [record(1, 0.0, "w0"), record(2, 1800.0, "w0")]
        wages = effective_wages(trace, {"w0": 2.0})
        assert len(wages) == 1
        assert wages[0].active_seconds == 1800.0
        assert wages[0].hourly_wage == pytest.approx(4.0)

    def test_auto_upvotes_do_not_extend_activity(self):
        trace = [
            record(1, 0.0, "w0"),
            record(2, 100.0, "w0"),
            record(3, 5000.0, "w0", auto=True),
        ]
        wages = effective_wages(trace, {"w0": 1.0})
        assert wages[0].active_seconds == 100.0

    def test_unpaid_worker_gets_zero_wage(self):
        trace = [record(1, 0.0, "w0"), record(2, 600.0, "w0")]
        wages = effective_wages(trace, {})
        assert wages[0].hourly_wage == 0.0

    def test_zero_span_worker(self):
        wages = effective_wages([record(1, 5.0, "w0")], {"w0": 1.0})
        assert wages[0].hourly_wage == 0.0


class TestReservationWage:
    def test_lowest_sustained_wage_wins(self):
        trace = [
            record(1, 0.0, "w0"), record(2, 3600.0, "w0"),
            record(3, 0.0, "w1"), record(4, 3600.0, "w1"),
        ]
        wage = estimate_reservation_wage(trace, {"w0": 6.0, "w1": 2.0})
        assert wage == pytest.approx(2.0)

    def test_short_stints_ignored(self):
        trace = [
            record(1, 0.0, "w0"), record(2, 3600.0, "w0"),
            record(3, 0.0, "w1"), record(4, 10.0, "w1"),  # 10s blip
        ]
        wage = estimate_reservation_wage(trace, {"w0": 6.0, "w1": 0.01})
        assert wage == pytest.approx(6.0)

    def test_no_signal_returns_none(self):
        assert estimate_reservation_wage([], {}) is None


class TestBudgetSuggestion:
    def test_expected_seconds_cardinality_template(self):
        template = Template.cardinality(2)
        latencies = ActionLatencies()
        seconds = expected_worker_seconds(SCHEMA, template, SCORING, latencies)
        per_row = sum(
            latencies.median_for_fill(c) for c in SCHEMA.column_names
        ) + latencies.upvote  # u_min - 1 = 1 manual endorsement
        assert seconds == pytest.approx(2 * per_row)

    def test_prefilled_cells_cost_nothing(self):
        full = Template.from_values([{"nationality": "Brazil"}])
        empty = Template.cardinality(1)
        assert expected_worker_seconds(
            SCHEMA, full, SCORING
        ) < expected_worker_seconds(SCHEMA, empty, SCORING)

    def test_budget_scales_with_wage(self):
        template = Template.cardinality(5)
        low = suggest_budget(SCHEMA, template, SCORING, 6.0)
        high = suggest_budget(SCHEMA, template, SCORING, 12.0)
        assert high == pytest.approx(2 * low)

    def test_budget_validation(self):
        template = Template.cardinality(1)
        with pytest.raises(ValueError):
            suggest_budget(SCHEMA, template, SCORING, 0)
        with pytest.raises(ValueError):
            suggest_budget(SCHEMA, template, SCORING, 5.0, overhead_factor=0.5)

    def test_suggested_budget_yields_target_wage_in_practice(self):
        """Close the loop: run a collection with the suggested budget
        and check realized wages land near the target."""
        from repro.core.schema import soccer_player_schema
        from repro.experiments import CrowdFillExperiment, ExperimentConfig

        target = 9.0  # dollars/hour
        template = Template.cardinality(10)
        # The experiment collects the section 6 schema (with dob).
        schema = soccer_player_schema(include_dob=True)
        budget = suggest_budget(schema, template, SCORING, target)
        config = ExperimentConfig(seed=7, target_rows=10, budget=budget)
        result = CrowdFillExperiment(config).run()
        assert result.completed
        payments = result.allocation(AllocationScheme.DUAL_WEIGHTED).by_worker
        wages = effective_wages(result.trace, payments)
        sustained = [
            w.hourly_wage for w in wages if w.active_seconds >= 60
        ]
        assert sustained
        mean_wage = sum(sustained) / len(sustained)
        # Within a factor of ~2 of the target: the cost model is a
        # median-based estimate, not an oracle.
        assert target / 2 <= mean_wage <= target * 2


def test_wage_report_formatting():
    trace = [record(1, 0.0, "w0"), record(2, 3600.0, "w0")]
    text = wage_report(trace, {"w0": 5.0})
    assert "w0" in text and "$5.00/hour" in text
    assert "insufficient" in wage_report([], {})
